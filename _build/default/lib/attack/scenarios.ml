module Time = Dsim.Time

type t = {
  tb : Voip.Testbed.t;
  transport : Voip.Transport.t;
  ident : Sip.Ident.t;
  rng : Dsim.Rng.t;
  host : string;
}

let create tb ~host =
  let _node, transport = Voip.Testbed.attacker tb ~host in
  {
    tb;
    transport;
    ident = Sip.Ident.create (Dsim.Rng.create (Hashtbl.hash host));
    rng = Dsim.Rng.create (Hashtbl.hash (host, "rng"));
    host;
  }

let host t = t.host
let sched t = t.tb.Voip.Testbed.sched
let at_time t when_ f = ignore (Dsim.Scheduler.schedule_at (sched t) when_ f)
let after t delay f = ignore (Dsim.Scheduler.schedule_after (sched t) delay f)

let send_sip t msg dst = Voip.Transport.send_msg t.transport msg dst

let send_spoofed t ~src ~dst payload = Voip.Transport.send_raw t.transport ~src ~dst payload

(* ------------------------------------------------------------------ *)
(* INVITE flooding                                                     *)
(* ------------------------------------------------------------------ *)

let invite_flood t ~target ~via_proxy ~count ~interval ~at =
  let dst =
    if via_proxy then t.tb.Voip.Testbed.proxy_b_addr
    else Dsim.Addr.v target.Sip.Uri.host 5060
  in
  at_time t at (fun () ->
      let rec burst i =
        if i < count then begin
          let msg =
            Forge.invite
              ~call_id:(Sip.Ident.call_id t.ident ~host:t.host)
              ~target_uri:target
              ~from_uri:(Sip.Uri.make ~user:"flooder" t.host)
              ~from_tag:(Sip.Ident.tag t.ident) ~via_host:t.host
              ~branch:(Sip.Ident.branch t.ident) ~cseq:1 ()
          in
          send_sip t msg dst;
          after t interval (fun () -> burst (i + 1))
        end
      in
      burst 0)

(* ------------------------------------------------------------------ *)
(* Helpers for call-centric scenarios                                  *)
(* ------------------------------------------------------------------ *)

(* Find the callee-side record of the (single) call between the pair. *)
let callee_call_info callee =
  Voip.Ua.active_calls callee
  |> List.find_opt (fun info ->
         info.Voip.Ua.role = `Callee && info.Voip.Ua.state = `Active)

let caller_call_info caller =
  Voip.Ua.active_calls caller
  |> List.find_opt (fun info ->
         info.Voip.Ua.role = `Caller && info.Voip.Ua.state = `Active)

let start_call t ~caller ~callee ~duration ~at =
  at_time t at (fun () -> Voip.Ua.call caller ~callee:(Voip.Ua.aor callee) ~duration)

(* Answer delay is at most 2.5 s; by [at + settle] the call is active. *)
let settle = Time.of_sec 4.0

(* ------------------------------------------------------------------ *)
(* BYE DoS                                                             *)
(* ------------------------------------------------------------------ *)

let spoofed_bye_call t ~caller ~callee ~at =
  start_call t ~caller ~callee ~duration:(Time.of_sec 60.0) ~at;
  at_time t (Time.add at settle) (fun () ->
      match callee_call_info callee with
      | None -> ()
      | Some info ->
          let bye =
            Forge.spoofed_bye ~call_id:info.Voip.Ua.call_id
              ~from_uri:(Voip.Ua.aor caller)
              ~from_tag:(Option.value info.Voip.Ua.from_tag ~default:"?")
              ~to_uri:(Voip.Ua.aor callee)
              ~to_tag:(Option.value info.Voip.Ua.to_tag ~default:"?")
              ~via_host:t.host
              ~branch:(Sip.Ident.branch t.ident) ~cseq:40 ()
          in
          send_sip t bye (Voip.Ua.addr callee))

(* ------------------------------------------------------------------ *)
(* CANCEL DoS                                                          *)
(* ------------------------------------------------------------------ *)

let cancel_dos_call t ~caller ~callee ~at =
  start_call t ~caller ~callee ~duration:(Time.of_sec 60.0) ~at;
  (* Strike while the call is still ringing (answer takes >= 0.5 s). *)
  at_time t (Time.add at (Time.of_ms 400.0)) (fun () ->
      let setup =
        Voip.Ua.active_calls caller
        |> List.find_opt (fun info ->
               info.Voip.Ua.role = `Caller && info.Voip.Ua.state = `Setup)
      in
      match setup with
      | None -> ()
      | Some info ->
          let cancel =
            Forge.spoofed_cancel ~call_id:info.Voip.Ua.call_id
              ~target_uri:(Voip.Ua.aor callee)
              ~from_uri:(Voip.Ua.aor caller)
              ~from_tag:(Option.value info.Voip.Ua.from_tag ~default:"?")
              ~via_host:t.host
              ~branch:(Sip.Ident.branch t.ident) ~cseq:1 ()
          in
          send_sip t cancel (Voip.Ua.addr callee))

(* ------------------------------------------------------------------ *)
(* Call hijacking                                                      *)
(* ------------------------------------------------------------------ *)

let hijack_call t ~caller ~callee ~at =
  start_call t ~caller ~callee ~duration:(Time.of_sec 60.0) ~at;
  at_time t (Time.add at settle) (fun () ->
      match callee_call_info callee with
      | None -> ()
      | Some info ->
          let reinvite =
            Forge.invite ~call_id:info.Voip.Ua.call_id
              ~target_uri:(Voip.Ua.aor callee)
              ~from_uri:(Sip.Uri.make ~user:"mallory" t.host)
              ~from_tag:(Sip.Ident.tag t.ident)
              ~to_tag:(Option.value info.Voip.Ua.to_tag ~default:"?")
              ~via_host:t.host
              ~branch:(Sip.Ident.branch t.ident) ~cseq:60
              ~sdp:
                (Sdp.to_string
                   (Sdp.make ~origin_user:"mallory" ~origin_host:t.host ~connection:t.host
                      ~media:[ Sdp.audio_media ~port:20000 ~formats:[ 18 ] ]
                      ()))
              ()
          in
          send_sip t reinvite (Voip.Ua.addr callee))

(* ------------------------------------------------------------------ *)
(* DRDoS reflection                                                    *)
(* ------------------------------------------------------------------ *)

let drdos t ~victim_host ~reflectors ~responses ~at =
  let victim = Dsim.Addr.v victim_host 5060 in
  at_time t at (fun () ->
      let rec send i =
        if i < responses then begin
          let reflector = Printf.sprintf "203.0.113.%d" (1 + (i mod reflectors)) in
          let msg =
            Forge.fake_response ~code:200
              ~call_id:(Sip.Ident.call_id t.ident ~host:reflector)
              ~to_host:victim_host
              ~branch:(Sip.Ident.branch t.ident) ()
          in
          send_spoofed t ~src:(Dsim.Addr.v reflector 5060) ~dst:victim
            (Sip.Msg.serialize msg);
          after t (Time.of_ms 20.0) (fun () -> send (i + 1))
        end
      in
      send 0)

(* ------------------------------------------------------------------ *)
(* Media spamming                                                      *)
(* ------------------------------------------------------------------ *)

let media_spam_call t ~caller ~callee ~at =
  start_call t ~caller ~callee ~duration:(Time.of_sec 60.0) ~at;
  at_time t (Time.add at settle) (fun () ->
      match caller_call_info caller with
      | None -> ()
      | Some info -> (
          match (info.Voip.Ua.ssrc, info.Voip.Ua.next_seq, info.Voip.Ua.next_ts,
                 info.Voip.Ua.remote_media)
          with
          | Some ssrc, Some seq, Some ts, Some target ->
              (* Same SSRC, jumped sequence/timestamp: the paper's spam
                 signature ("same SSRC identifier with higher sequence
                 number or timestamp"). *)
              let rec inject i =
                if i < 25 then begin
                  let payload =
                    Forge.rtp_with ~ssrc
                      ~seq:((seq + 2000 + i) land 0xFFFF)
                      ~ts:(Int32.add ts (Int32.of_int (800000 + (160 * i))))
                      ~payload_len:20 ()
                  in
                  send_spoofed t ~src:(Dsim.Addr.v t.host 17000) ~dst:target payload;
                  after t (Time.of_ms 20.0) (fun () -> inject (i + 1))
                end
              in
              inject 0
          | _ -> ()))

(* ------------------------------------------------------------------ *)
(* RTP flooding                                                        *)
(* ------------------------------------------------------------------ *)

let rtp_flood t ~target ~rate_pps ~duration ~at =
  let interval = Time.of_sec (1.0 /. float_of_int rate_pps) in
  let total = rate_pps * int_of_float (Float.max 1.0 (Time.to_sec duration)) in
  let ssrc = Int64.to_int32 (Dsim.Rng.bits64 t.rng) in
  at_time t at (fun () ->
      let rec blast i =
        if i < total then begin
          let payload =
            Forge.rtp_with ~ssrc ~seq:(i land 0xFFFF)
              ~ts:(Int32.of_int (160 * i))
              ~payload_len:160 ()
          in
          send_spoofed t ~src:(Dsim.Addr.v t.host 18000) ~dst:target payload;
          after t interval (fun () -> blast (i + 1))
        end
      in
      blast 0)

(* ------------------------------------------------------------------ *)
(* Registration hijacking                                              *)
(* ------------------------------------------------------------------ *)

let register_hijack t ~victim ~at =
  let victim_uri = Voip.Ua.aor victim in
  at_time t at (fun () ->
      let register =
        Sip.Msg.request ~meth:Sip.Msg_method.REGISTER
          ~uri:(Sip.Uri.make victim_uri.Sip.Uri.host)
          ~via:
            (Sip.Via.make ~port:5060 ~branch:(Sip.Ident.branch t.ident) t.host)
          ~from_:(Sip.Name_addr.make ~params:[ ("tag", Some (Sip.Ident.tag t.ident)) ] victim_uri)
          ~to_:(Sip.Name_addr.make victim_uri)
          ~call_id:(Sip.Ident.call_id t.ident ~host:t.host)
          ~cseq:(Sip.Cseq.make 1 Sip.Msg_method.REGISTER)
          ~contact:(Sip.Name_addr.make (Sip.Uri.make ~user:"mallory" ~port:5060 t.host))
          ~headers:[ ("Expires", "3600") ]
          ()
      in
      send_sip t register t.tb.Voip.Testbed.proxy_b_addr)

(* ------------------------------------------------------------------ *)
(* Billing fraud                                                       *)
(* ------------------------------------------------------------------ *)

let billing_fraud_call t ~caller ~callee ~at =
  at_time t at (fun () ->
      Voip.Ua.set_fraudulent caller true;
      Voip.Ua.call caller ~callee:(Voip.Ua.aor callee) ~duration:(Time.of_sec 8.0))
