let na ?tag uri =
  let params = match tag with None -> [] | Some t -> [ ("tag", Some t) ] in
  Sip.Name_addr.make ~params uri

let spoofed_bye ~call_id ~from_uri ~from_tag ~to_uri ~to_tag ~via_host ~branch ~cseq () =
  Sip.Msg.request ~meth:Sip.Msg_method.BYE ~uri:to_uri
    ~via:(Sip.Via.make ~port:5060 ~branch via_host)
    ~from_:(na ~tag:from_tag from_uri)
    ~to_:(na ~tag:to_tag to_uri)
    ~call_id
    ~cseq:(Sip.Cseq.make cseq Sip.Msg_method.BYE)
    ()

let spoofed_cancel ~call_id ~target_uri ~from_uri ~from_tag ~via_host ~branch ~cseq () =
  Sip.Msg.request ~meth:Sip.Msg_method.CANCEL ~uri:target_uri
    ~via:(Sip.Via.make ~port:5060 ~branch via_host)
    ~from_:(na ~tag:from_tag from_uri)
    ~to_:(na target_uri)
    ~call_id
    ~cseq:(Sip.Cseq.make cseq Sip.Msg_method.CANCEL)
    ()

let invite ~call_id ~target_uri ~from_uri ~from_tag ?to_tag ~via_host ~branch ~cseq ?sdp () =
  let body = Option.value sdp ~default:"" in
  let content_type = match sdp with Some _ -> Some "application/sdp" | None -> None in
  Sip.Msg.request ~meth:Sip.Msg_method.INVITE ~uri:target_uri
    ~via:(Sip.Via.make ~port:5060 ~branch via_host)
    ~from_:(na ~tag:from_tag from_uri)
    ~to_:(na ?tag:to_tag target_uri)
    ~call_id
    ~cseq:(Sip.Cseq.make cseq Sip.Msg_method.INVITE)
    ~contact:(na (Sip.Uri.make via_host))
    ~body ?content_type ()

let fake_response ~code ~call_id ~to_host ~branch () =
  let victim_uri = Sip.Uri.make to_host in
  let req =
    Sip.Msg.request ~meth:Sip.Msg_method.OPTIONS ~uri:victim_uri
      ~via:(Sip.Via.make ~port:5060 ~branch to_host)
      ~from_:(na ~tag:"refl" victim_uri)
      ~to_:(na victim_uri)
      ~call_id
      ~cseq:(Sip.Cseq.make 1 Sip.Msg_method.OPTIONS)
      ()
  in
  Sip.Msg.response_to req ~code ~to_tag:"reflected" ()

let rtp_with ~ssrc ~seq ~ts ?(payload_type = 18) ~payload_len () =
  Rtp.Rtp_packet.encode
    (Rtp.Rtp_packet.make ~payload_type ~sequence:seq ~timestamp:ts ~ssrc
       (String.make payload_len '\xAA'))
