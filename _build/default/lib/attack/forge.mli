(** Message forgery helpers shared by the attack injectors.

    Everything here builds syntactically valid protocol messages with
    attacker-chosen identity fields — the threat model of paper §3 assumes
    no cryptographic authentication, so a forged message is indistinguishable
    from a genuine one except by the stateful cross-protocol analysis vIDS
    performs. *)

val spoofed_bye :
  call_id:string ->
  from_uri:Sip.Uri.t ->
  from_tag:string ->
  to_uri:Sip.Uri.t ->
  to_tag:string ->
  via_host:string ->
  branch:string ->
  cseq:int ->
  unit ->
  Sip.Msg.t
(** A BYE claiming to come from [from_uri;tag=from_tag]. *)

val spoofed_cancel :
  call_id:string ->
  target_uri:Sip.Uri.t ->
  from_uri:Sip.Uri.t ->
  from_tag:string ->
  via_host:string ->
  branch:string ->
  cseq:int ->
  unit ->
  Sip.Msg.t

val invite :
  call_id:string ->
  target_uri:Sip.Uri.t ->
  from_uri:Sip.Uri.t ->
  from_tag:string ->
  ?to_tag:string ->
  via_host:string ->
  branch:string ->
  cseq:int ->
  ?sdp:string ->
  unit ->
  Sip.Msg.t
(** An INVITE; pass [to_tag] to forge an in-dialog (hijacking) INVITE. *)

val fake_response :
  code:int ->
  call_id:string ->
  to_host:string ->
  branch:string ->
  unit ->
  Sip.Msg.t
(** An unsolicited response, as a DRDoS reflector would emit toward the
    spoofed victim. *)

val rtp_with :
  ssrc:int32 -> seq:int -> ts:int32 -> ?payload_type:int -> payload_len:int -> unit -> string
(** Encoded RTP bytes with chosen header fields. *)
