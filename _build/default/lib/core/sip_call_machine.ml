module M = Efsm.Machine
module E = Efsm.Event
module Env = Efsm.Env
module V = Efsm.Value

let st_init = "INIT"
let st_invite_rcvd = "INVITE_RCVD"
let st_proceeding = "PROCEEDING"
let st_established = "ESTABLISHED"
let st_confirmed = "CONFIRMED"
let st_reinvite_pending = "REINVITE_PENDING"
let st_teardown = "TEARDOWN"
let st_cancelling = "CANCELLING"
let st_failed = "FAILED"
let st_closed = "CLOSED"
let st_registering = "REGISTERING"
let st_options_pending = "OPTIONS_PENDING"
let st_cancel_dos = "CANCEL_DOS_ATTACK"
let st_hijack = "HIJACK_ATTACK"

(* Local variable names. *)
let l_call_id = "l_call_id"
let l_from_tag = "l_from_tag"
let l_to_tag = "l_to_tag"
let l_branch = "l_branch"
let l_invite_src = "l_invite_src"
let l_caller_contact = "l_caller_contact"
let l_callee_contact = "l_callee_contact"

(* ------------------------------------------------------------------ *)
(* Guard helpers                                                       *)
(* ------------------------------------------------------------------ *)

let code_between lo hi event =
  let c = E.arg_int event Keys.code in
  c >= lo && c <= hi

let cseq_is meth event = String.equal (E.arg_str event Keys.cseq_method) meth
let is_1xx event = code_between 100 199 event
let is_2xx_invite event = code_between 200 299 event && cseq_is "INVITE" event
let is_fail_invite event = code_between 300 699 event && cseq_is "INVITE" event
let is_2xx_bye event = code_between 200 299 event && cseq_is "BYE" event
let is_final event = code_between 200 699 event

let same_var env name event key = V.equal (E.arg event key) (Env.get env Env.Local name)

(* Does the From tag of an in-dialog request name one of the two
   participants (in either orientation)? *)
let dialog_tags_match env event =
  let from_tag = E.arg event Keys.from_tag in
  let to_tag = E.arg event Keys.to_tag in
  let local_from = Env.get env Env.Local l_from_tag in
  let local_to = Env.get env Env.Local l_to_tag in
  (V.equal from_tag local_from && V.equal to_tag local_to)
  || (V.equal from_tag local_to && V.equal to_tag local_from)

let src_is_participant env event =
  let src = E.arg event Keys.src_ip in
  V.equal src (Env.get env Env.Local l_caller_contact)
  || V.equal src (Env.get env Env.Local l_callee_contact)

(* ------------------------------------------------------------------ *)
(* Actions                                                             *)
(* ------------------------------------------------------------------ *)

let media_args event =
  [
    (Keys.media_host, E.arg event Keys.media_host);
    (Keys.media_port, E.arg event Keys.media_port);
    (Keys.media_pt, E.arg event Keys.media_pt);
  ]

let store_offer_media env event =
  if E.has_arg event Keys.media_host then begin
    let host = E.arg_str event Keys.media_host in
    let port = E.arg_int event Keys.media_port in
    Env.set env Env.Global Keys.g_caller_media (V.Addr (host, port));
    Env.set env Env.Global Keys.g_codec (E.arg event Keys.media_pt);
    [ M.Send_sync { target = Keys.rtp_machine; event_name = Keys.delta_media_offer;
                    args = media_args event } ]
  end
  else []

let store_answer_media env event =
  if E.has_arg event Keys.media_host then begin
    let host = E.arg_str event Keys.media_host in
    let port = E.arg_int event Keys.media_port in
    Env.set env Env.Global Keys.g_callee_media (V.Addr (host, port));
    [ M.Send_sync { target = Keys.rtp_machine; event_name = Keys.delta_media_answer;
                    args = media_args event } ]
  end
  else []

let on_invite env event =
  Env.set env Env.Local l_call_id (E.arg event Keys.call_id);
  Env.set env Env.Local l_from_tag (E.arg event Keys.from_tag);
  Env.set env Env.Local l_branch (E.arg event Keys.branch);
  Env.set env Env.Local l_invite_src (E.arg event Keys.src_ip);
  Env.set env Env.Local l_caller_contact (E.arg event Keys.contact_host);
  store_offer_media env event

let on_2xx_invite env event =
  Env.set env Env.Local l_to_tag (E.arg event Keys.to_tag);
  Env.set env Env.Local l_callee_contact (E.arg event Keys.contact_host);
  store_answer_media env event

(* A BYE names its sender via the From tag.  The δ message carries the
   claimed sender's media host (so the RTP machine can attribute later
   packets) and whether the network source actually was that participant's
   contact address — the discriminator between billing fraud and a spoofed
   BYE (paper §3.1). *)
let on_bye env event =
  let claimed_is_caller =
    V.equal (E.arg event Keys.from_tag) (Env.get env Env.Local l_from_tag)
  in
  let media_global = if claimed_is_caller then Keys.g_caller_media else Keys.g_callee_media in
  let claimed_media_host =
    match Env.get env Env.Global media_global with V.Addr (host, _) -> host | _ -> ""
  in
  let claimed_contact =
    Env.get env Env.Local (if claimed_is_caller then l_caller_contact else l_callee_contact)
  in
  let src_matched = V.equal (E.arg event Keys.src_ip) claimed_contact in
  [
    M.Send_sync
      {
        target = Keys.rtp_machine;
        event_name = Keys.delta_bye;
        args =
          [
            (Keys.bye_sender_ip, V.Str claimed_media_host);
            ("src_matched", V.Bool src_matched);
          ];
      };
  ]

(* ------------------------------------------------------------------ *)
(* The specification                                                   *)
(* ------------------------------------------------------------------ *)

let tr = M.transition

let spec (_config : Config.t) =
  let transitions =
    [
      (* --- Call setup --- *)
      tr ~label:"inv_new" ~from_state:st_init (M.On_event "INVITE") ~to_state:st_invite_rcvd
        ~action:(fun env event -> on_invite env event)
        ();
      tr ~label:"inv_retrans" ~from_state:st_invite_rcvd (M.On_event "INVITE")
        ~to_state:st_invite_rcvd
        ~guard:(fun env event -> same_var env l_branch event Keys.branch)
        ();
      tr ~label:"resp_1xx" ~from_state:st_invite_rcvd (M.On_event Keys.response)
        ~to_state:st_proceeding
        ~guard:(fun _ event -> is_1xx event)
        ();
      tr ~label:"resp_1xx_more" ~from_state:st_proceeding (M.On_event Keys.response)
        ~to_state:st_proceeding
        ~guard:(fun _ event -> is_1xx event)
        ();
      tr ~label:"inv_retrans_proc" ~from_state:st_proceeding (M.On_event "INVITE")
        ~to_state:st_proceeding
        ~guard:(fun env event -> same_var env l_branch event Keys.branch)
        ();
      tr ~label:"resp_2xx_direct" ~from_state:st_invite_rcvd (M.On_event Keys.response)
        ~to_state:st_established
        ~guard:(fun _ event -> is_2xx_invite event)
        ~action:(fun env event -> on_2xx_invite env event)
        ();
      tr ~label:"resp_2xx" ~from_state:st_proceeding (M.On_event Keys.response)
        ~to_state:st_established
        ~guard:(fun _ event -> is_2xx_invite event)
        ~action:(fun env event -> on_2xx_invite env event)
        ();
      tr ~label:"resp_fail_direct" ~from_state:st_invite_rcvd (M.On_event Keys.response)
        ~to_state:st_failed
        ~guard:(fun _ event -> is_fail_invite event)
        ();
      tr ~label:"resp_fail" ~from_state:st_proceeding (M.On_event Keys.response)
        ~to_state:st_failed
        ~guard:(fun _ event -> is_fail_invite event)
        ();
      (* --- Establishment --- *)
      tr ~label:"ack" ~from_state:st_established (M.On_event "ACK") ~to_state:st_confirmed ();
      tr ~label:"resp_2xx_retrans_est" ~from_state:st_established (M.On_event Keys.response)
        ~to_state:st_established
        ~guard:(fun _ event -> is_2xx_invite event)
        ();
      tr ~label:"resp_2xx_retrans_conf" ~from_state:st_confirmed (M.On_event Keys.response)
        ~to_state:st_confirmed
        ~guard:(fun _ event -> is_2xx_invite event)
        ();
      tr ~label:"ack_retrans" ~from_state:st_confirmed (M.On_event "ACK") ~to_state:st_confirmed
        ();
      (* --- Re-INVITE vs hijack --- *)
      tr ~label:"reinvite" ~from_state:st_confirmed (M.On_event "INVITE")
        ~to_state:st_reinvite_pending
        ~guard:(fun env event -> dialog_tags_match env event && src_is_participant env event)
        ();
      tr ~label:"hijack" ~from_state:st_confirmed (M.On_event "INVITE") ~to_state:st_hijack
        ~guard:(fun env event ->
          not (dialog_tags_match env event && src_is_participant env event))
        ();
      tr ~label:"hijack_absorb_inv" ~from_state:st_hijack (M.On_event "INVITE")
        ~to_state:st_hijack ();
      tr ~label:"hijack_absorb_resp" ~from_state:st_hijack (M.On_event Keys.response)
        ~to_state:st_hijack ();
      tr ~label:"hijack_absorb_ack" ~from_state:st_hijack (M.On_event "ACK") ~to_state:st_hijack
        ();
      tr ~label:"hijack_absorb_bye" ~from_state:st_hijack (M.On_event "BYE") ~to_state:st_hijack
        ();
      tr ~label:"reinv_1xx" ~from_state:st_reinvite_pending (M.On_event Keys.response)
        ~to_state:st_reinvite_pending
        ~guard:(fun _ event -> is_1xx event)
        ();
      tr ~label:"reinv_retrans" ~from_state:st_reinvite_pending (M.On_event "INVITE")
        ~to_state:st_reinvite_pending ();
      tr ~label:"reinv_2xx" ~from_state:st_reinvite_pending (M.On_event Keys.response)
        ~to_state:st_confirmed
        ~guard:(fun _ event -> is_2xx_invite event)
        ~action:(fun env event -> store_answer_media env event)
        ();
      tr ~label:"reinv_fail" ~from_state:st_reinvite_pending (M.On_event Keys.response)
        ~to_state:st_confirmed
        ~guard:(fun _ event -> is_fail_invite event)
        ();
      tr ~label:"reinv_ack" ~from_state:st_reinvite_pending (M.On_event "ACK")
        ~to_state:st_confirmed ();
      tr ~label:"reinv_bye" ~from_state:st_reinvite_pending (M.On_event "BYE")
        ~to_state:st_teardown
        ~guard:(fun env event ->
          same_var env l_from_tag event Keys.from_tag
          || same_var env l_to_tag event Keys.from_tag)
        ~action:(fun env event -> on_bye env event)
        ();
      (* --- Teardown --- *)
      tr ~label:"bye" ~from_state:st_confirmed (M.On_event "BYE") ~to_state:st_teardown
        ~guard:(fun env event ->
          same_var env l_from_tag event Keys.from_tag
          || same_var env l_to_tag event Keys.from_tag)
        ~action:(fun env event -> on_bye env event)
        ();
      tr ~label:"bye_early" ~from_state:st_established (M.On_event "BYE") ~to_state:st_teardown
        ~guard:(fun env event ->
          same_var env l_from_tag event Keys.from_tag
          || same_var env l_to_tag event Keys.from_tag)
        ~action:(fun env event -> on_bye env event)
        ();
      tr ~label:"bye_preanswer" ~from_state:st_proceeding (M.On_event "BYE")
        ~to_state:st_teardown
        ~guard:(fun env event -> same_var env l_from_tag event Keys.from_tag)
        ~action:(fun env event -> on_bye env event)
        ();
      tr ~label:"bye_retrans" ~from_state:st_teardown (M.On_event "BYE") ~to_state:st_teardown
        ();
      tr ~label:"resp_2xx_bye" ~from_state:st_teardown (M.On_event Keys.response)
        ~to_state:st_closed
        ~guard:(fun _ event -> is_2xx_bye event)
        ();
      tr ~label:"teardown_other_resp" ~from_state:st_teardown (M.On_event Keys.response)
        ~to_state:st_teardown
        ~guard:(fun _ event -> not (is_2xx_bye event))
        ();
      (* --- CANCEL: legitimate vs third-party DoS (paper §3.1) --- *)
      tr ~label:"cancel_inv" ~from_state:st_invite_rcvd (M.On_event "CANCEL")
        ~to_state:st_cancelling
        ~guard:(fun env event -> same_var env l_invite_src event Keys.src_ip)
        ();
      tr ~label:"cancel_dos_inv" ~from_state:st_invite_rcvd (M.On_event "CANCEL")
        ~to_state:st_cancel_dos
        ~guard:(fun env event -> not (same_var env l_invite_src event Keys.src_ip))
        ();
      tr ~label:"cancel_proc" ~from_state:st_proceeding (M.On_event "CANCEL")
        ~to_state:st_cancelling
        ~guard:(fun env event -> same_var env l_invite_src event Keys.src_ip)
        ();
      tr ~label:"cancel_dos_proc" ~from_state:st_proceeding (M.On_event "CANCEL")
        ~to_state:st_cancel_dos
        ~guard:(fun env event -> not (same_var env l_invite_src event Keys.src_ip))
        ();
      tr ~label:"cancelling_resp_other" ~from_state:st_cancelling (M.On_event Keys.response)
        ~to_state:st_cancelling
        ~guard:(fun _ event -> not (is_2xx_invite event))
        ();
      tr ~label:"cancelling_2xx_race" ~from_state:st_cancelling (M.On_event Keys.response)
        ~to_state:st_established
        ~guard:(fun _ event -> is_2xx_invite event)
        ~action:(fun env event -> on_2xx_invite env event)
        ();
      tr ~label:"cancelling_retrans" ~from_state:st_cancelling (M.On_event "CANCEL")
        ~to_state:st_cancelling ();
      tr ~label:"cancelling_ack" ~from_state:st_cancelling (M.On_event "ACK")
        ~to_state:st_closed ();
      tr ~label:"cancel_dos_resp" ~from_state:st_cancel_dos (M.On_event Keys.response)
        ~to_state:st_cancelling ();
      tr ~label:"cancel_dos_retrans" ~from_state:st_cancel_dos (M.On_event "CANCEL")
        ~to_state:st_cancel_dos ();
      tr ~label:"cancel_dos_ack" ~from_state:st_cancel_dos (M.On_event "ACK")
        ~to_state:st_closed ();
      (* --- Failed setup --- *)
      tr ~label:"failed_ack" ~from_state:st_failed (M.On_event "ACK") ~to_state:st_closed ();
      tr ~label:"failed_resp_retrans" ~from_state:st_failed (M.On_event Keys.response)
        ~to_state:st_failed ();
      (* --- Non-dialog methods --- *)
      tr ~label:"register" ~from_state:st_init (M.On_event "REGISTER") ~to_state:st_registering
        ();
      tr ~label:"register_retrans" ~from_state:st_registering (M.On_event "REGISTER")
        ~to_state:st_registering ();
      tr ~label:"register_1xx" ~from_state:st_registering (M.On_event Keys.response)
        ~to_state:st_registering
        ~guard:(fun _ event -> is_1xx event)
        ();
      tr ~label:"register_final" ~from_state:st_registering (M.On_event Keys.response)
        ~to_state:st_closed
        ~guard:(fun _ event -> is_final event)
        ();
      tr ~label:"options" ~from_state:st_init (M.On_event "OPTIONS")
        ~to_state:st_options_pending ();
      tr ~label:"options_retrans" ~from_state:st_options_pending (M.On_event "OPTIONS")
        ~to_state:st_options_pending ();
      tr ~label:"options_1xx" ~from_state:st_options_pending (M.On_event Keys.response)
        ~to_state:st_options_pending
        ~guard:(fun _ event -> is_1xx event)
        ();
      tr ~label:"options_final" ~from_state:st_options_pending (M.On_event Keys.response)
        ~to_state:st_closed
        ~guard:(fun _ event -> is_final event)
        ();
      (* --- Closed: absorb stragglers, allow Call-ID reuse --- *)
      tr ~label:"closed_resp" ~from_state:st_closed (M.On_event Keys.response)
        ~to_state:st_closed ();
      tr ~label:"closed_ack" ~from_state:st_closed (M.On_event "ACK") ~to_state:st_closed ();
      tr ~label:"closed_bye" ~from_state:st_closed (M.On_event "BYE") ~to_state:st_closed ();
      tr ~label:"closed_reinvite" ~from_state:st_closed (M.On_event "INVITE")
        ~to_state:st_invite_rcvd
        ~action:(fun env event -> on_invite env event)
        ();
    ]
  in
  {
    M.spec_name = Keys.sip_machine;
    initial = st_init;
    finals = [ st_closed ];
    attack_states =
      [
        (st_cancel_dos, "CANCEL from a third-party source for a pending INVITE");
        (st_hijack, "in-dialog INVITE with foreign tags or source (call hijack)");
      ];
    transitions;
  }
