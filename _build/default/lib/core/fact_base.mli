(** The Call State Fact Base (paper Figure 3, §5).

    Stores, per ongoing call, one instance of each protocol state machine
    (the paper's "only one instance of a protocol state machine is
    maintained at the memory" per call) plus the standalone detector
    machines keyed by destination or stream.  Completed calls are deleted
    after a linger period; the memory model mirrors §7.3's ≈450 B SIP +
    ≈40 B RTP per-call figures alongside the measured footprint. *)

type call = {
  call_id : string;
  system : Efsm.System.t;
  sip : Efsm.Machine.t;
  rtp : Efsm.Machine.t;
  created_at : Dsim.Time.t;
  mutable media_addrs : Dsim.Addr.t list;
  mutable closing : bool;
  mutable finish_pending : bool;
}

type t

val create :
  config:Config.t ->
  timer_host:Efsm.System.timer_host ->
  on_alert:(machine:string -> state:string -> subject:string -> detail:string -> unit) ->
  on_anomaly:(machine:string -> state:string -> subject:string -> event:Efsm.Event.t -> detail:string -> unit) ->
  t

val find_call : t -> string -> call option

val create_call : t -> call_id:string -> call
(** Instantiates the SIP and RTP machines inside a fresh communicating
    system.  Raises [Invalid_argument] on a duplicate Call-ID. *)

val register_media : t -> call -> Dsim.Addr.t -> unit
(** Binds a media address to the call for RTP routing. *)

val call_for_media : t -> Dsim.Addr.t -> call option

val known_media : t -> Dsim.Addr.t -> bool

val flood_detector : t -> key:string -> Efsm.System.t * Efsm.Machine.t
(** Per-destination INVITE flood machine (created on first use). *)

val spam_detector : t -> key:string -> Efsm.System.t * Efsm.Machine.t

val drdos_detector : t -> key:string -> Efsm.System.t * Efsm.Machine.t

val maybe_finish : t -> call -> unit
(** If both machines reached their final states, marks the call closing and
    schedules its deletion after the configured linger. *)

val sweep : t -> max_age:Dsim.Time.t -> int
(** Forcibly deletes calls older than [max_age]; returns how many.  Covers
    abandoned setups that never reach a final state. *)

(** {1 Statistics} *)

type stats = {
  active_calls : int;
  peak_calls : int;
  calls_created : int;
  calls_deleted : int;
  detectors : int;
  modeled_bytes : int;  (** Paper's per-call memory model. *)
  measured_bytes : int;  (** Actual local-variable footprint. *)
}

val stats : t -> stats
