module M = Efsm.Machine
module Env = Efsm.Env
module V = Efsm.Value

let st_init = "INIT"
let st_counting = "PACKET_RCVD"
let st_flood = "FLOOD_ATTACK"
let window_timer_id = "flood_window_T1"
let machine_name = "INVITE_FLOOD"
let l_count = "l_pck_counter"

let count env = match Env.get env Env.Local l_count with V.Int n -> n | _ -> 0
let tr = M.transition

let spec (config : Config.t) =
  let threshold = config.Config.invite_flood_threshold in
  let transitions =
    [
      tr ~label:"first_invite" ~from_state:st_init (M.On_event "INVITE") ~to_state:st_counting
        ~action:(fun env _ ->
          Env.set env Env.Local l_count (V.Int 1);
          [ M.Set_timer { id = window_timer_id; delay = config.Config.invite_flood_window } ])
        ();
      tr ~label:"count" ~from_state:st_counting (M.On_event "INVITE") ~to_state:st_counting
        ~guard:(fun env _ -> count env + 1 <= threshold)
        ~action:(fun env _ ->
          Env.set env Env.Local l_count (V.Int (count env + 1));
          [])
        ();
      tr ~label:"flood" ~from_state:st_counting (M.On_event "INVITE") ~to_state:st_flood
        ~guard:(fun env _ -> count env + 1 > threshold)
        ~action:(fun _ _ -> [ M.Cancel_timer window_timer_id ])
        ();
      tr ~label:"window_over" ~from_state:st_counting (M.On_timer window_timer_id)
        ~to_state:st_init
        ~action:(fun env _ ->
          Env.set env Env.Local l_count (V.Int 0);
          [])
        ();
      tr ~label:"flood_more" ~from_state:st_flood (M.On_event "INVITE") ~to_state:st_flood ();
    ]
  in
  {
    M.spec_name = machine_name;
    initial = st_init;
    finals = [];
    attack_states =
      [ (st_flood, Printf.sprintf "more than %d INVITEs within the window" threshold) ];
    transitions;
  }
