lib/core/fact_base.ml: Config Drdos_machine Dsim Efsm Hashtbl Invite_flood_machine List Media_spam_machine Printf Rtp_call_machine Sip_call_machine String
