lib/core/sip_call_machine.ml: Config Efsm Keys String
