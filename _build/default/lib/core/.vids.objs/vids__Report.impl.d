lib/core/report.ml: Alert Config Dsim Engine Fact_base Format List
