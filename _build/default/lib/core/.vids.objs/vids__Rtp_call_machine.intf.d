lib/core/rtp_call_machine.mli: Config Efsm
