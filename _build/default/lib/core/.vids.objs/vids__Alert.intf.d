lib/core/alert.mli: Dsim Format
