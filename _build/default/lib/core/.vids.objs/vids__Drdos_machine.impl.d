lib/core/drdos_machine.ml: Config Efsm Printf
