lib/core/media_spam_machine.mli: Config Efsm
