lib/core/engine.mli: Alert Config Dsim Fact_base
