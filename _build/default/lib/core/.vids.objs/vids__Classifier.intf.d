lib/core/classifier.mli: Dsim Rtp Sip
