lib/core/sip_event.mli: Dsim Efsm Sip
