lib/core/fact_base.mli: Config Dsim Efsm
