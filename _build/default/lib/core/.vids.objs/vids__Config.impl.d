lib/core/config.ml: Dsim
