lib/core/media_spam_machine.ml: Config Efsm Int32 Keys Printf Rtp
