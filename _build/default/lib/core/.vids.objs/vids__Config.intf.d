lib/core/config.mli: Dsim
