lib/core/invite_flood_machine.mli: Config Efsm
