lib/core/sip_call_machine.mli: Config Efsm
