lib/core/classifier.ml: Dsim Rtp Sip
