lib/core/keys.mli:
