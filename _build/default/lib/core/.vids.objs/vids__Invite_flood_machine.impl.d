lib/core/invite_flood_machine.ml: Config Efsm Printf
