lib/core/keys.ml:
