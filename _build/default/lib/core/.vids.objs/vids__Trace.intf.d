lib/core/trace.mli: Config Dsim Engine
