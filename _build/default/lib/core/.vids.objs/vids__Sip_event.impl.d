lib/core/sip_event.ml: Dsim Efsm Keys Option Sdp Sip String
