lib/core/rtp_call_machine.ml: Config Efsm Keys
