lib/core/trace.ml: Buffer Char Dsim Engine List Printf String
