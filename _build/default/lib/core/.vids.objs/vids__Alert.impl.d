lib/core/alert.ml: Dsim Format
