lib/core/drdos_machine.mli: Config Efsm
