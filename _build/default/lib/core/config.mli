(** vIDS tunables: detection thresholds (the timers of paper §6/§7.5) and the
    calibrated per-packet cost model (paper §7.2–§7.4). *)

type t = {
  (* --- INVITE flooding (Figure 4) --- *)
  invite_flood_window : Dsim.Time.t;
      (** Timer T1 of the pattern: the measurement window. *)
  invite_flood_threshold : int;
      (** N: INVITEs to one destination within the window considered normal. *)
  (* --- BYE DoS / billing fraud (Figure 5) --- *)
  bye_inflight_timer : Dsim.Time.t;
      (** Timer T: grace period for in-flight RTP after a BYE; the paper
          recommends about one round-trip time. *)
  (* --- Media spamming (Figure 6) --- *)
  spam_ts_gap : int;
      (** Δt: allowed forward jump in RTP timestamp ticks between
          consecutive packets of a stream. *)
  spam_seq_gap : int;  (** Δn: allowed forward jump in sequence numbers. *)
  spam_silence_ts_gap : int;
      (** Allowed timestamp jump when the sequence number is consecutive —
          a talkspurt after silence suppression (RFC 3550 marker
          semantics).  The paper's raw Figure-6 rule (ts gap alone) would
          false-alarm on the G.729 VAD its own testbed enables. *)
  spam_reorder_tolerance : int;
      (** Allowed backward distance before a packet counts as replay. *)
  (* --- RTP flooding --- *)
  rtp_flood_window : Dsim.Time.t;
  rtp_flood_threshold : int;  (** Packets per window per stream. *)
  (* --- DRDoS reflection --- *)
  drdos_window : Dsim.Time.t;
  drdos_threshold : int;
      (** Orphan responses (no known transaction) per destination per
          window. *)
  (* --- Cost model (calibrated; see DESIGN.md §4) --- *)
  sip_transit_delay : Dsim.Time.t;
      (** Added forwarding latency per SIP message when deployed inline. *)
  rtp_transit_delay : Dsim.Time.t;
  sip_cpu_cost : Dsim.Time.t;  (** Host CPU busy time per SIP message. *)
  rtp_cpu_cost : Dsim.Time.t;
  (* --- Memory model (paper §7.3) --- *)
  sip_state_bytes : int;  (** ≈450 B of SIP call state. *)
  rtp_state_bytes : int;  (** ≈40 B of RTP state. *)
  (* --- Housekeeping --- *)
  closed_call_linger : Dsim.Time.t;
      (** How long a completed call record survives before deletion (it
          absorbs late retransmissions). *)
  flag_boundary_register : bool;
      (** Raise a registration-hijack warning for REGISTER requests seen at
          the boundary sensor (legitimate registrations stay inside the
          enterprise LAN; roaming users are the false-positive risk, hence
          Warning severity). *)
}

val default : t

val passive : t -> t
(** Same thresholds, zero transit delay — vIDS as a pure monitor. *)
