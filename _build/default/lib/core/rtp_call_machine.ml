module M = Efsm.Machine
module E = Efsm.Event
module Env = Efsm.Env
module V = Efsm.Value

let st_init = "INIT"
let st_open = "RTP_OPEN"
let st_active = "RTP_RCVD"
let st_after_bye = "RTP_RCVD_AFTER_BYE"
let st_closed = "RTP_CLOSED"
let st_bye_dos = "BYE_DOS_ATTACK"
let st_billing_fraud = "BILLING_FRAUD_ATTACK"
let bye_timer_id = "bye_inflight_T"

let l_bye_claimed = "l_bye_claimed_host"
let l_bye_src_matched = "l_bye_src_matched"
let l_inflight = "l_inflight_count"

let on_bye config env event =
  Env.set env Env.Local l_bye_claimed (E.arg event Keys.bye_sender_ip);
  Env.set env Env.Local l_bye_src_matched (E.arg event "src_matched");
  Env.set env Env.Local l_inflight (V.Int 0);
  [ M.Set_timer { id = bye_timer_id; delay = config.Config.bye_inflight_timer } ]

(* After timer T: does a straggler packet come from the participant the BYE
   claimed to be, and was that BYE's source genuine? *)
let from_claimed_and_matched env event =
  V.equal (E.arg event Keys.src_ip) (Env.get env Env.Local l_bye_claimed)
  && V.equal (Env.get env Env.Local l_bye_src_matched) (V.Bool true)

let tr = M.transition

let spec (config : Config.t) =
  let transitions =
    [
      tr ~label:"open" ~from_state:st_init (M.On_sync Keys.delta_media_offer) ~to_state:st_open
        ();
      tr ~label:"answer" ~from_state:st_open (M.On_sync Keys.delta_media_answer)
        ~to_state:st_open ();
      tr ~label:"first_rtp" ~from_state:st_open (M.On_event Keys.rtp_packet) ~to_state:st_active
        ();
      tr ~label:"rtp" ~from_state:st_active (M.On_event Keys.rtp_packet) ~to_state:st_active ();
      tr ~label:"answer_active" ~from_state:st_active (M.On_sync Keys.delta_media_answer)
        ~to_state:st_active ();
      (* --- δ BYE: start the in-flight grace timer (Figure 5) --- *)
      tr ~label:"bye_active" ~from_state:st_active (M.On_sync Keys.delta_bye)
        ~to_state:st_after_bye
        ~action:(fun env event -> on_bye config env event)
        ();
      tr ~label:"bye_open" ~from_state:st_open (M.On_sync Keys.delta_bye)
        ~to_state:st_after_bye
        ~action:(fun env event -> on_bye config env event)
        ();
      tr ~label:"bye_init" ~from_state:st_init (M.On_sync Keys.delta_bye) ~to_state:st_closed ();
      tr ~label:"inflight" ~from_state:st_after_bye (M.On_event Keys.rtp_packet)
        ~to_state:st_after_bye
        ~action:(fun env _ ->
          let n = match Env.get env Env.Local l_inflight with V.Int n -> n | _ -> 0 in
          Env.set env Env.Local l_inflight (V.Int (n + 1));
          [])
        ();
      tr ~label:"bye_retrans" ~from_state:st_after_bye (M.On_sync Keys.delta_bye)
        ~to_state:st_after_bye ();
      tr ~label:"grace_over" ~from_state:st_after_bye (M.On_timer bye_timer_id)
        ~to_state:st_closed ();
      (* --- Media after close: the paper's BYE DoS signature, split by the
         BYE source check into fraud vs spoofed-BYE DoS --- *)
      tr ~label:"billing_fraud" ~from_state:st_closed (M.On_event Keys.rtp_packet)
        ~to_state:st_billing_fraud
        ~guard:(fun env event -> from_claimed_and_matched env event)
        ();
      tr ~label:"bye_dos" ~from_state:st_closed (M.On_event Keys.rtp_packet)
        ~to_state:st_bye_dos
        ~guard:(fun env event -> not (from_claimed_and_matched env event))
        ();
      tr ~label:"closed_bye" ~from_state:st_closed (M.On_sync Keys.delta_bye)
        ~to_state:st_closed ();
      tr ~label:"bye_dos_more" ~from_state:st_bye_dos (M.On_event Keys.rtp_packet)
        ~to_state:st_bye_dos ();
      tr ~label:"fraud_more" ~from_state:st_billing_fraud (M.On_event Keys.rtp_packet)
        ~to_state:st_billing_fraud ();
    ]
  in
  {
    M.spec_name = Keys.rtp_machine;
    initial = st_init;
    finals = [ st_closed ];
    attack_states =
      [
        (st_bye_dos, "RTP continued after a spoofed BYE (BYE DoS)");
        (st_billing_fraud, "RTP continued from the party that sent BYE (billing fraud)");
      ];
    transitions;
  }
