type classification =
  | Sip of Sip.Msg.t
  | Rtp of Rtp.Rtp_packet.t
  | Rtcp of Rtp.Rtcp.t
  | Malformed_sip of string
  | Malformed_rtp of string
  | Other

let sip_port = 5060
let rtp_port_range = (16384, 32767)

let in_rtp_range port =
  let lo, hi = rtp_port_range in
  port >= lo && port <= hi

let quick_protocol (packet : Dsim.Packet.t) =
  if packet.dst.Dsim.Addr.port = sip_port || packet.src.Dsim.Addr.port = sip_port then `Sip
  else if in_rtp_range packet.dst.Dsim.Addr.port then `Media
  else `Other

let classify ~known_media (packet : Dsim.Packet.t) =
  let dst_port = packet.dst.Dsim.Addr.port in
  if dst_port = sip_port || packet.src.Dsim.Addr.port = sip_port then
    match Sip.Msg.parse packet.payload with
    | Ok msg -> Sip msg
    | Error e -> Malformed_sip e
  else if known_media packet.dst || in_rtp_range dst_port then
    if dst_port land 1 = 0 then
      match Rtp.Rtp_packet.decode packet.payload with
      | Ok p -> Rtp p
      | Error e -> Malformed_rtp e
    else
      match Rtp.Rtcp.decode packet.payload with
      | Ok r -> Rtcp r
      | Error e -> Malformed_rtp e
  else Other
