module M = Efsm.Machine
module E = Efsm.Event
module Env = Efsm.Env
module V = Efsm.Value

let st_init = "INIT"
let st_stream = "PACKET_RCVD"
let st_dormant = "DORMANT"
let st_spam = "MEDIA_SPAM_ATTACK"
let st_flood = "RTP_FLOOD_ATTACK"
let window_timer_id = "rate_window"
let machine_name = "MEDIA_SPAM"
let l_ssrc = "l_ssrc"
let l_seq = "l_sequence_number"
let l_ts = "l_time_stamp"
let l_count = "l_window_count"

let get_int env name = match Env.get env Env.Local name with V.Int n -> n | _ -> 0

let baseline env event =
  Env.set env Env.Local l_ssrc (E.arg event Keys.ssrc);
  Env.set env Env.Local l_seq (E.arg event Keys.seq);
  Env.set env Env.Local l_ts (E.arg event Keys.ts)

(* The paper's spam predicate:
   (x.time_stamp_{i+1} - v.time_stamp_i > Δt) or
   (x.sequence_number_{i+1} - v.sequence_number_i > Δn),
   extended with an SSRC identity check, a replay (deep reorder) check, and
   a talkspurt refinement: a packet whose sequence number is consecutive
   may jump further in timestamp (silence suppression emits no packets but
   the media clock keeps running — the paper's own codec settings enable
   SAD, which the raw rule would flag).  An injector cannot hide behind the
   refinement without giving up the sequence-number advance it needs for
   its packets to win the receiver's playout. *)
let is_spam config env event =
  let ssrc_mismatch = not (V.equal (E.arg event Keys.ssrc) (Env.get env Env.Local l_ssrc)) in
  ssrc_mismatch
  ||
  let seq_jump = Rtp.Rtp_packet.seq_delta (get_int env l_seq) (E.arg_int event Keys.seq) in
  let ts_jump =
    Rtp.Rtp_packet.ts_delta
      (Int32.of_int (get_int env l_ts))
      (Int32.of_int (E.arg_int event Keys.ts))
  in
  let ts_limit =
    if seq_jump >= 1 && seq_jump <= 2 then config.Config.spam_silence_ts_gap
    else config.Config.spam_ts_gap
  in
  seq_jump > config.Config.spam_seq_gap
  || seq_jump < -config.Config.spam_reorder_tolerance
  || ts_jump > ts_limit
  || ts_jump < -(config.Config.spam_ts_gap * 4)

let is_flood config env = get_int env l_count + 1 > config.Config.rtp_flood_threshold

let advance env event =
  (* Only move the baseline forward so reordered packets cannot drag it
     backwards. *)
  let seq = E.arg_int event Keys.seq in
  let ts = E.arg_int event Keys.ts in
  if Rtp.Rtp_packet.seq_delta (get_int env l_seq) seq > 0 then begin
    Env.set env Env.Local l_seq (V.Int seq);
    Env.set env Env.Local l_ts (V.Int ts)
  end;
  Env.set env Env.Local l_count (V.Int (get_int env l_count + 1))

let tr = M.transition

let spec (config : Config.t) =
  let set_window = M.Set_timer { id = window_timer_id; delay = config.Config.rtp_flood_window } in
  let transitions =
    [
      tr ~label:"first_packet" ~from_state:st_init (M.On_event Keys.rtp_packet)
        ~to_state:st_stream
        ~action:(fun env event ->
          baseline env event;
          Env.set env Env.Local l_count (V.Int 1);
          [ set_window ])
        ();
      tr ~label:"flood" ~from_state:st_stream (M.On_event Keys.rtp_packet) ~to_state:st_flood
        ~guard:(fun env _ -> is_flood config env)
        ~action:(fun _ _ -> [ M.Cancel_timer window_timer_id ])
        ();
      tr ~label:"spam" ~from_state:st_stream (M.On_event Keys.rtp_packet) ~to_state:st_spam
        ~guard:(fun env event -> (not (is_flood config env)) && is_spam config env event)
        ~action:(fun _ _ -> [ M.Cancel_timer window_timer_id ])
        ();
      tr ~label:"in_order" ~from_state:st_stream (M.On_event Keys.rtp_packet)
        ~to_state:st_stream
        ~guard:(fun env event -> (not (is_flood config env)) && not (is_spam config env event))
        ~action:(fun env event ->
          advance env event;
          [])
        ();
      tr ~label:"window_active" ~from_state:st_stream (M.On_timer window_timer_id)
        ~to_state:st_stream
        ~guard:(fun env _ -> get_int env l_count > 0)
        ~action:(fun env _ ->
          Env.set env Env.Local l_count (V.Int 0);
          [ set_window ])
        ();
      tr ~label:"window_idle" ~from_state:st_stream (M.On_timer window_timer_id)
        ~to_state:st_dormant
        ~guard:(fun env _ -> get_int env l_count = 0)
        ();
      tr ~label:"resume" ~from_state:st_dormant (M.On_event Keys.rtp_packet) ~to_state:st_stream
        ~guard:(fun env event -> V.equal (E.arg event Keys.ssrc) (Env.get env Env.Local l_ssrc))
        ~action:(fun env event ->
          baseline env event;
          Env.set env Env.Local l_count (V.Int 1);
          [ set_window ])
        ();
      tr ~label:"resume_foreign" ~from_state:st_dormant (M.On_event Keys.rtp_packet)
        ~to_state:st_spam
        ~guard:(fun env event ->
          not (V.equal (E.arg event Keys.ssrc) (Env.get env Env.Local l_ssrc)))
        ();
      tr ~label:"spam_more" ~from_state:st_spam (M.On_event Keys.rtp_packet) ~to_state:st_spam
        ();
      tr ~label:"flood_more" ~from_state:st_flood (M.On_event Keys.rtp_packet)
        ~to_state:st_flood ();
    ]
  in
  {
    M.spec_name = machine_name;
    initial = st_init;
    finals = [];
    attack_states =
      [
        (st_spam, "RTP stream discontinuity: foreign SSRC, sequence or timestamp gap");
        ( st_flood,
          Printf.sprintf "more than %d RTP packets per window on one stream"
            config.Config.rtp_flood_threshold );
      ];
    transitions;
  }
