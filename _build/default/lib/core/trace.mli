(** Packet trace capture and offline replay.

    An online vIDS taps live traffic; this module gives it the pcap-style
    workflow: record the packets crossing the sensor to a portable text
    format, then re-run the full analysis pipeline over the file later.
    Replay reconstructs virtual time from the recorded timestamps so every
    timer-based pattern (flood windows, the BYE grace period T) behaves
    exactly as it did live. *)

type record = {
  at : Dsim.Time.t;  (** Capture timestamp. *)
  src : Dsim.Addr.t;
  dst : Dsim.Addr.t;
  payload : string;  (** Raw wire bytes. *)
}

val record_of_packet : at:Dsim.Time.t -> Dsim.Packet.t -> record

(** {1 Text serialization}

    One record per line: [<at_us> <src> <dst> <hex payload>]. *)

val record_to_line : record -> string

val record_of_line : string -> (record, string) result

val save : out_channel -> record list -> unit

val load : in_channel -> (record list, string) result
(** Stops at the first malformed line with its line number. *)

(** {1 Capture} *)

type recorder

val recorder : unit -> recorder

val tap : recorder -> Dsim.Scheduler.t -> Dsim.Packet.t -> unit
(** Shaped for [Dsim.Network.set_tap] after partial application. *)

val records : recorder -> record list
(** Chronological. *)

(** {1 Replay} *)

val replay : ?config:Config.t -> record list -> Engine.t
(** Runs an engine over the trace under virtual time and returns it (with
    its alerts, counters and fact base) for inspection.  Records need not
    be sorted. *)
