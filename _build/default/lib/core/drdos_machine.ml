module M = Efsm.Machine
module Env = Efsm.Env
module V = Efsm.Value

let st_init = "INIT"
let st_counting = "ORPHAN_RCVD"
let st_attack = "DRDOS_ATTACK"
let window_timer_id = "drdos_window"
let machine_name = "DRDOS"
let orphan_response = "ORPHAN_RESPONSE"
let l_count = "l_orphan_count"

let count env = match Env.get env Env.Local l_count with V.Int n -> n | _ -> 0
let tr = M.transition

let spec (config : Config.t) =
  let threshold = config.Config.drdos_threshold in
  let transitions =
    [
      tr ~label:"first_orphan" ~from_state:st_init (M.On_event orphan_response)
        ~to_state:st_counting
        ~action:(fun env _ ->
          Env.set env Env.Local l_count (V.Int 1);
          [ M.Set_timer { id = window_timer_id; delay = config.Config.drdos_window } ])
        ();
      tr ~label:"count" ~from_state:st_counting (M.On_event orphan_response)
        ~to_state:st_counting
        ~guard:(fun env _ -> count env + 1 <= threshold)
        ~action:(fun env _ ->
          Env.set env Env.Local l_count (V.Int (count env + 1));
          [])
        ();
      tr ~label:"attack" ~from_state:st_counting (M.On_event orphan_response)
        ~to_state:st_attack
        ~guard:(fun env _ -> count env + 1 > threshold)
        ~action:(fun _ _ -> [ M.Cancel_timer window_timer_id ])
        ();
      tr ~label:"window_over" ~from_state:st_counting (M.On_timer window_timer_id)
        ~to_state:st_init
        ~action:(fun env _ ->
          Env.set env Env.Local l_count (V.Int 0);
          [])
        ();
      tr ~label:"attack_more" ~from_state:st_attack (M.On_event orphan_response)
        ~to_state:st_attack ();
    ]
  in
  {
    M.spec_name = machine_name;
    initial = st_init;
    finals = [];
    attack_states =
      [
        ( st_attack,
          Printf.sprintf "more than %d unsolicited SIP responses within the window" threshold );
      ];
    transitions;
  }
