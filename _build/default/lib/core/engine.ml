type counters = {
  sip_packets : int;
  rtp_packets : int;
  rtcp_packets : int;
  other_packets : int;
  malformed_packets : int;
  orphan_requests : int;
  orphan_responses : int;
  alerts_raised : int;
  alerts_suppressed : int;
  anomalies : int;
}

type t = {
  config : Config.t;
  sched : Dsim.Scheduler.t;
  mutable base : Fact_base.t option; (* set right after creation; never None afterwards *)
  mutable alerts : Alert.t list; (* newest first *)
  seen : (string, unit) Hashtbl.t; (* alert dedup keys *)
  mutable listeners : (Alert.t -> unit) list;
  mutable busy : Dsim.Time.t;
  mutable sip_packets : int;
  mutable rtp_packets : int;
  mutable rtcp_packets : int;
  mutable other_packets : int;
  mutable malformed_packets : int;
  mutable orphan_requests : int;
  mutable orphan_responses : int;
  mutable suppressed : int;
  mutable anomalies : int;
  mutable inline_free_at : Dsim.Time.t; (* single-CPU queueing for inline deployment *)
}

let base t =
  match t.base with Some b -> b | None -> failwith "Engine: fact base not initialized"

let now t = Dsim.Scheduler.now t.sched

let raise_alert t alert =
  let key = Alert.dedup_key alert in
  if Hashtbl.mem t.seen key then t.suppressed <- t.suppressed + 1
  else begin
    Hashtbl.replace t.seen key ();
    t.alerts <- alert :: t.alerts;
    List.iter (fun listener -> listener alert) t.listeners
  end

(* Map a machine's attack state to the alert taxonomy. *)
let kind_of_attack_state state =
  if String.equal state Sip_call_machine.st_cancel_dos then Alert.Cancel_dos
  else if String.equal state Sip_call_machine.st_hijack then Alert.Call_hijack
  else if String.equal state Rtp_call_machine.st_bye_dos then Alert.Bye_dos
  else if String.equal state Rtp_call_machine.st_billing_fraud then Alert.Billing_fraud
  else if String.equal state Invite_flood_machine.st_flood then Alert.Invite_flood
  else if String.equal state Media_spam_machine.st_spam then Alert.Media_spam
  else if String.equal state Media_spam_machine.st_flood then Alert.Rtp_flood
  else if String.equal state Drdos_machine.st_attack then Alert.Drdos
  else Alert.Spec_deviation

let create ?(config = Config.default) sched =
  let t =
    {
      config;
      sched;
      base = None;
      alerts = [];
      seen = Hashtbl.create 64;
      listeners = [];
      busy = Dsim.Time.zero;
      sip_packets = 0;
      rtp_packets = 0;
      rtcp_packets = 0;
      other_packets = 0;
      malformed_packets = 0;
      orphan_requests = 0;
      orphan_responses = 0;
      suppressed = 0;
      anomalies = 0;
      inline_free_at = Dsim.Time.zero;
    }
  in
  let on_alert ~machine:_ ~state ~subject ~detail =
    raise_alert t (Alert.make ~kind:(kind_of_attack_state state) ~at:(now t) ~subject detail)
  in
  let on_anomaly ~machine ~state ~subject ~event ~detail =
    t.anomalies <- t.anomalies + 1;
    let subject = Printf.sprintf "%s/%s@%s" subject event.Efsm.Event.name state in
    raise_alert t
      (Alert.make ~kind:Alert.Spec_deviation ~at:(now t) ~subject
         (Printf.sprintf "machine %s: %s" machine detail))
  in
  let timer_host = Efsm.System.timer_host_of_scheduler sched in
  t.base <- Some (Fact_base.create ~config ~timer_host ~on_alert ~on_anomaly);
  t

let config t = t.config

(* --------------------------------------------------------------- *)
(* SIP distribution                                                 *)
(* --------------------------------------------------------------- *)

let register_event_media t call event =
  match Sip_event.media_of_event event with
  | None -> ()
  | Some addr -> Fact_base.register_media (base t) call addr

let feed_flood_detector t msg event =
  match Sip_event.flood_key msg with
  | None -> ()
  | Some key ->
      let system, _ = Fact_base.flood_detector (base t) ~key in
      Efsm.System.inject system ~machine:Invite_flood_machine.machine_name event

let feed_drdos_detector t (packet : Dsim.Packet.t) event =
  let key = Dsim.Addr.host packet.dst in
  let system, _ = Fact_base.drdos_detector (base t) ~key in
  let orphan =
    Efsm.Event.make
      ~args:event.Efsm.Event.args (Efsm.Event.Data "SIP") ~at:event.Efsm.Event.at
      Drdos_machine.orphan_response
  in
  Efsm.System.inject system ~machine:Drdos_machine.machine_name orphan

(* A REGISTER crossing the boundary sensor: intra-enterprise registrations
   never reach this vantage point, so someone outside is rebinding a
   protected user's contact. *)
let check_boundary_register t msg =
  if t.config.Config.flag_boundary_register then
    match msg.Sip.Msg.start with
    | Sip.Msg.Request { meth = Sip.Msg_method.REGISTER; _ } ->
        let subject =
          match Sip.Msg.to_ msg with
          | Ok to_ ->
              let uri = to_.Sip.Name_addr.uri in
              Option.value uri.Sip.Uri.user ~default:"" ^ "@" ^ uri.Sip.Uri.host
          | Error _ -> "unknown-aor"
        in
        let contact =
          match Sip.Msg.contact msg with
          | Ok na -> Sip.Uri.to_string na.Sip.Name_addr.uri
          | Error _ -> "?"
        in
        raise_alert t
          (Alert.make ~kind:Alert.Registration_hijack ~at:(now t) ~subject
             (Printf.sprintf "REGISTER crossed the boundary sensor binding contact %s" contact))
    | Sip.Msg.Request _ | Sip.Msg.Response _ -> ()

let handle_sip t (packet : Dsim.Packet.t) msg =
  t.sip_packets <- t.sip_packets + 1;
  t.busy <- Dsim.Time.add t.busy t.config.Config.sip_cpu_cost;
  let event = Sip_event.of_msg ~at:(now t) ~src:packet.src ~dst:packet.dst msg in
  check_boundary_register t msg;
  (match msg.Sip.Msg.start with
  | Sip.Msg.Request { meth = Sip.Msg_method.INVITE; _ } -> feed_flood_detector t msg event
  | Sip.Msg.Request _ | Sip.Msg.Response _ -> ());
  match Sip.Msg.call_id msg with
  | Error e ->
      t.malformed_packets <- t.malformed_packets + 1;
      raise_alert t
        (Alert.make ~kind:Alert.Spec_deviation ~at:(now t)
           ~subject:(Dsim.Addr.to_string packet.src)
           (Printf.sprintf "SIP message without Call-ID: %s" e))
  | Ok call_id -> (
      match Fact_base.find_call (base t) call_id with
      | Some call ->
          register_event_media t call event;
          Efsm.System.inject call.Fact_base.system ~machine:Keys.sip_machine event;
          Fact_base.maybe_finish (base t) call
      | None -> (
          match msg.Sip.Msg.start with
          | Sip.Msg.Request { meth = Sip.Msg_method.INVITE; _ } ->
              let call = Fact_base.create_call (base t) ~call_id in
              register_event_media t call event;
              Efsm.System.inject call.Fact_base.system ~machine:Keys.sip_machine event
          | Sip.Msg.Request { meth = Sip.Msg_method.REGISTER; _ } ->
              (* Already reported by the boundary-REGISTER check; a
                 registration is not expected to belong to a call. *)
              ()
          | Sip.Msg.Request { meth; _ } ->
              t.orphan_requests <- t.orphan_requests + 1;
              raise_alert t
                (Alert.make ~kind:Alert.Spec_deviation ~severity:Alert.Warning ~at:(now t)
                   ~subject:(call_id ^ "/" ^ Sip.Msg_method.to_string meth)
                   "request for a call the sensor never saw established")
          | Sip.Msg.Response _ ->
              t.orphan_responses <- t.orphan_responses + 1;
              feed_drdos_detector t packet event))

(* --------------------------------------------------------------- *)
(* RTP distribution                                                 *)
(* --------------------------------------------------------------- *)

let rtp_event ~at ~src ~dst (p : Rtp.Rtp_packet.t) =
  let module V = Efsm.Value in
  Efsm.Event.make
    ~args:
      [
        (Keys.src_ip, V.Str (Dsim.Addr.host src));
        (Keys.src_port, V.Int (Dsim.Addr.port src));
        (Keys.dst_ip, V.Str (Dsim.Addr.host dst));
        (Keys.dst_port, V.Int (Dsim.Addr.port dst));
        (Keys.ssrc, V.Int (Int32.to_int p.Rtp.Rtp_packet.ssrc));
        (Keys.seq, V.Int p.Rtp.Rtp_packet.sequence);
        (Keys.ts, V.Int (Int32.to_int p.Rtp.Rtp_packet.timestamp));
        (Keys.payload_type, V.Int p.Rtp.Rtp_packet.payload_type);
        (Keys.size, V.Int (String.length p.Rtp.Rtp_packet.payload));
      ]
    (Efsm.Event.Data "RTP") ~at Keys.rtp_packet

let handle_rtp t (packet : Dsim.Packet.t) decoded =
  t.rtp_packets <- t.rtp_packets + 1;
  t.busy <- Dsim.Time.add t.busy t.config.Config.rtp_cpu_cost;
  let event = rtp_event ~at:(now t) ~src:packet.src ~dst:packet.dst decoded in
  (* Stream-level checks (Figure 6) run on every stream the sensor sees. *)
  let stream_key = Dsim.Addr.to_string packet.dst in
  let system, _ = Fact_base.spam_detector (base t) ~key:stream_key in
  Efsm.System.inject system ~machine:Media_spam_machine.machine_name event;
  (* Call-level cross-protocol checks (Figure 5) when the stream belongs to
     a tracked call. *)
  match Fact_base.call_for_media (base t) packet.dst with
  | None -> ()
  | Some call ->
      Efsm.System.inject call.Fact_base.system ~machine:Keys.rtp_machine event;
      Fact_base.maybe_finish (base t) call

(* --------------------------------------------------------------- *)
(* Entry points                                                     *)
(* --------------------------------------------------------------- *)

let process_packet t packet =
  match Classifier.classify ~known_media:(Fact_base.known_media (base t)) packet with
  | Classifier.Sip msg -> handle_sip t packet msg
  | Classifier.Rtp decoded -> handle_rtp t packet decoded
  | Classifier.Rtcp _ ->
      t.rtcp_packets <- t.rtcp_packets + 1;
      t.busy <- Dsim.Time.add t.busy t.config.Config.rtp_cpu_cost
  | Classifier.Malformed_sip e ->
      t.malformed_packets <- t.malformed_packets + 1;
      t.busy <- Dsim.Time.add t.busy t.config.Config.sip_cpu_cost;
      raise_alert t
        (Alert.make ~kind:Alert.Spec_deviation ~at:(now t)
           ~subject:(Dsim.Addr.to_string packet.Dsim.Packet.src)
           (Printf.sprintf "unparsable SIP message: %s" e))
  | Classifier.Malformed_rtp _ -> t.malformed_packets <- t.malformed_packets + 1
  | Classifier.Other -> t.other_packets <- t.other_packets + 1

let tap t packet = process_packet t packet

(* Inline forwarding latency: a fixed per-protocol pipeline latency plus
   time spent queued behind earlier packets on the single analysis CPU
   (whose occupancy per packet is the much smaller cpu cost).  The queueing
   term is what perturbs RTP jitter under load (§7.4). *)
let transit_delay t packet =
  let pipeline, cpu =
    match Classifier.quick_protocol packet with
    | `Sip -> (t.config.Config.sip_transit_delay, t.config.Config.sip_cpu_cost)
    | `Media -> (t.config.Config.rtp_transit_delay, t.config.Config.rtp_cpu_cost)
    | `Other -> (Dsim.Time.zero, Dsim.Time.zero)
  in
  if pipeline = Dsim.Time.zero then Dsim.Time.zero
  else begin
    let at = Dsim.Scheduler.now t.sched in
    let start = Dsim.Time.max at t.inline_free_at in
    t.inline_free_at <- Dsim.Time.add start cpu;
    Dsim.Time.add (Dsim.Time.sub start at) pipeline
  end

let alerts t = List.rev t.alerts
let alerts_of_kind t kind = List.filter (fun a -> a.Alert.kind = kind) (alerts t)

let counters t =
  {
    sip_packets = t.sip_packets;
    rtp_packets = t.rtp_packets;
    rtcp_packets = t.rtcp_packets;
    other_packets = t.other_packets;
    malformed_packets = t.malformed_packets;
    orphan_requests = t.orphan_requests;
    orphan_responses = t.orphan_responses;
    alerts_raised = List.length t.alerts;
    alerts_suppressed = t.suppressed;
    anomalies = t.anomalies;
  }

let cpu_busy t = t.busy
let fact_base t = base t
let memory_stats t = Fact_base.stats (base t)
let on_alert t listener = t.listeners <- listener :: t.listeners
