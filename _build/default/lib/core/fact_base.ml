type call = {
  call_id : string;
  system : Efsm.System.t;
  sip : Efsm.Machine.t;
  rtp : Efsm.Machine.t;
  created_at : Dsim.Time.t;
  mutable media_addrs : Dsim.Addr.t list;
  mutable closing : bool;
  mutable finish_pending : bool;
}

type detector = { d_system : Efsm.System.t; d_machine : Efsm.Machine.t }

type t = {
  config : Config.t;
  timer_host : Efsm.System.timer_host;
  on_alert : machine:string -> state:string -> subject:string -> detail:string -> unit;
  on_anomaly :
    machine:string ->
    state:string ->
    subject:string ->
    event:Efsm.Event.t ->
    detail:string ->
    unit;
  calls : (string, call) Hashtbl.t;
  media_index : (string, string) Hashtbl.t; (* media addr -> call id *)
  floods : (string, detector) Hashtbl.t;
  spams : (string, detector) Hashtbl.t;
  drdoses : (string, detector) Hashtbl.t;
  mutable peak : int;
  mutable created : int;
  mutable deleted : int;
}

let create ~config ~timer_host ~on_alert ~on_anomaly =
  {
    config;
    timer_host;
    on_alert;
    on_anomaly;
    calls = Hashtbl.create 256;
    media_index = Hashtbl.create 256;
    floods = Hashtbl.create 64;
    spams = Hashtbl.create 256;
    drdoses = Hashtbl.create 64;
    peak = 0;
    created = 0;
    deleted = 0;
  }

let find_call t call_id = Hashtbl.find_opt t.calls call_id

let system_callbacks t ~subject =
  let on_alert (n : Efsm.System.notification) =
    t.on_alert ~machine:n.Efsm.System.machine ~state:n.Efsm.System.state ~subject
      ~detail:n.Efsm.System.detail
  in
  let on_anomaly (n : Efsm.System.notification) =
    t.on_anomaly ~machine:n.Efsm.System.machine ~state:n.Efsm.System.state ~subject
      ~event:n.Efsm.System.event ~detail:n.Efsm.System.detail
  in
  (on_alert, on_anomaly)

let create_call t ~call_id =
  if Hashtbl.mem t.calls call_id then
    invalid_arg (Printf.sprintf "Fact_base.create_call: duplicate %S" call_id);
  let on_alert, on_anomaly = system_callbacks t ~subject:call_id in
  let system = Efsm.System.create ~on_alert ~on_anomaly t.timer_host in
  let sip = Efsm.System.add_machine system (Sip_call_machine.spec t.config) in
  let rtp = Efsm.System.add_machine system (Rtp_call_machine.spec t.config) in
  let call =
    {
      call_id;
      system;
      sip;
      rtp;
      created_at = t.timer_host.Efsm.System.now ();
      media_addrs = [];
      closing = false;
      finish_pending = false;
    }
  in
  Hashtbl.replace t.calls call_id call;
  t.created <- t.created + 1;
  let active = Hashtbl.length t.calls in
  if active > t.peak then t.peak <- active;
  call

let media_key addr = Dsim.Addr.to_string addr

let register_media t call addr =
  if not (List.exists (Dsim.Addr.equal addr) call.media_addrs) then begin
    call.media_addrs <- addr :: call.media_addrs;
    Hashtbl.replace t.media_index (media_key addr) call.call_id
  end

let call_for_media t addr =
  match Hashtbl.find_opt t.media_index (media_key addr) with
  | None -> None
  | Some call_id -> find_call t call_id

let known_media t addr = Hashtbl.mem t.media_index (media_key addr)

let detector table t ~key ~make_spec ~subject_prefix =
  match Hashtbl.find_opt table key with
  | Some d -> (d.d_system, d.d_machine)
  | None ->
      let subject = subject_prefix ^ key in
      let on_alert, on_anomaly = system_callbacks t ~subject in
      let d_system = Efsm.System.create ~on_alert ~on_anomaly t.timer_host in
      let d_machine = Efsm.System.add_machine d_system (make_spec t.config) in
      Hashtbl.replace table key { d_system; d_machine };
      (d_system, d_machine)

let flood_detector t ~key =
  detector t.floods t ~key ~make_spec:Invite_flood_machine.spec ~subject_prefix:"dst:"

let spam_detector t ~key =
  detector t.spams t ~key ~make_spec:Media_spam_machine.spec ~subject_prefix:"stream:"

let drdos_detector t ~key =
  detector t.drdoses t ~key ~make_spec:Drdos_machine.spec ~subject_prefix:"victim:"

let delete_call t call =
  Efsm.System.release call.system;
  List.iter (fun addr -> Hashtbl.remove t.media_index (media_key addr)) call.media_addrs;
  if Hashtbl.mem t.calls call.call_id then begin
    Hashtbl.remove t.calls call.call_id;
    t.deleted <- t.deleted + 1
  end

let rtp_done call =
  Efsm.Machine.is_final call.rtp
  || String.equal (Efsm.Machine.state call.rtp) Rtp_call_machine.st_init

let schedule_delete t call =
  call.closing <- true;
  ignore
    (t.timer_host.Efsm.System.set t.config.Config.closed_call_linger (fun () ->
         delete_call t call))

let maybe_finish t call =
  if (not call.closing) && Efsm.Machine.is_final call.sip then
    if rtp_done call then schedule_delete t call
    else if not call.finish_pending then begin
      (* The RTP machine is waiting out the in-flight grace timer; no
         further packet may arrive to re-trigger this check, so look once
         more after the grace period.  A single re-check only: a machine
         parked in an attack state never becomes final, and re-polling
         forever would keep an otherwise-drained scheduler alive — such
         records are left for [sweep]. *)
      call.finish_pending <- true;
      ignore
        (t.timer_host.Efsm.System.set
           (Dsim.Time.add t.config.Config.bye_inflight_timer (Dsim.Time.of_ms 50.0))
           (fun () ->
             if (not call.closing) && Efsm.Machine.is_final call.sip && rtp_done call then
               schedule_delete t call))
    end

let sweep t ~max_age =
  let now = t.timer_host.Efsm.System.now () in
  let stale =
    Hashtbl.fold
      (fun _ call acc ->
        if Dsim.Time.( > ) (Dsim.Time.sub now call.created_at) max_age then call :: acc else acc)
      t.calls []
  in
  List.iter (delete_call t) stale;
  List.length stale

type stats = {
  active_calls : int;
  peak_calls : int;
  calls_created : int;
  calls_deleted : int;
  detectors : int;
  modeled_bytes : int;
  measured_bytes : int;
}

let stats t =
  let active = Hashtbl.length t.calls in
  let per_call = t.config.Config.sip_state_bytes + t.config.Config.rtp_state_bytes in
  let measured =
    Hashtbl.fold (fun _ call acc -> acc + Efsm.System.estimated_bytes call.system) t.calls 0
  in
  {
    active_calls = active;
    peak_calls = t.peak;
    calls_created = t.created;
    calls_deleted = t.deleted;
    detectors = Hashtbl.length t.floods + Hashtbl.length t.spams + Hashtbl.length t.drdoses;
    modeled_bytes = active * per_call;
    measured_bytes = measured;
  }
