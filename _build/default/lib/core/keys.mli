(** Names of event parameters, state variables and synchronization messages
    shared by the protocol machines and the event distributor. *)

(** {1 Event parameter names (the input vector x̄)} *)

val src_ip : string

val src_port : string

val dst_ip : string

val dst_port : string

val code : string
(** Response status code (int). *)

val cseq_method : string

val cseq_number : string

val call_id : string

val from_tag : string

val to_tag : string

val branch : string

val contact_host : string
(** Host of the Contact header, when present. *)

val media_host : string
(** From an SDP body, when present. *)

val media_port : string

val media_pt : string
(** First offered payload type. *)

val ssrc : string

val seq : string

val ts : string

val payload_type : string

val size : string

(** {1 Event names} *)

val response : string
(** All SIP responses arrive as this event; guards read [code]. *)

val rtp_packet : string

(** {1 Synchronization messages (the δ events of Figures 2 and 5)} *)

val delta_media_offer : string
(** SIP → RTP: caller's media description from the INVITE. *)

val delta_media_answer : string
(** SIP → RTP: callee's media description from the 2xx. *)

val delta_bye : string
(** SIP → RTP: a BYE passed through; argument [bye_sender_ip]. *)

val bye_sender_ip : string

(** {1 Machine names within a call's system} *)

val sip_machine : string

val rtp_machine : string

(** {1 Global (cross-machine) variable names} *)

val g_caller_media : string

val g_callee_media : string

val g_codec : string
