(** Voice codec timing models.

    Enough to generate media streams with the right packet rate, payload
    size and timestamp increments.  The paper's testbed uses G.729 with a
    10 ms frame and 8 kbit/s coding rate. *)

type t = {
  name : string;
  payload_type : int;
  clock_rate : int;  (** RTP timestamp ticks per second. *)
  frame_ms : float;  (** Frame duration in milliseconds. *)
  frames_per_packet : int;
  bytes_per_frame : int;
}

val g729 : t
(** 10 ms frames, 10 bytes per frame (8 kbit/s), 2 frames per packet
    (20 ms packetization, the common VoIP setting). *)

val g711u : t
(** G.711 µ-law: 20 ms packets, 160 bytes. *)

val packet_interval : t -> Dsim.Time.t
(** Wall-clock time between packets. *)

val timestamp_increment : t -> int
(** RTP timestamp ticks between consecutive packets. *)

val payload_size : t -> int
(** Bytes of media per packet. *)

val of_payload_type : int -> t option
