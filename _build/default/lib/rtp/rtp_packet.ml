type t = {
  version : int;
  padding : bool;
  marker : bool;
  payload_type : int;
  sequence : int;
  timestamp : int32;
  ssrc : int32;
  csrc : int32 list;
  payload : string;
}

let make ?(marker = false) ~payload_type ~sequence ~timestamp ~ssrc payload =
  if payload_type < 0 || payload_type > 127 then invalid_arg "Rtp_packet.make: payload_type";
  {
    version = 2;
    padding = false;
    marker;
    payload_type;
    sequence = sequence land 0xFFFF;
    timestamp;
    ssrc;
    csrc = [];
    payload;
  }

let header_size t = 12 + (4 * List.length t.csrc)

let encode t =
  let n = List.length t.csrc in
  if n > 15 then invalid_arg "Rtp_packet.encode: too many CSRCs";
  let header = Bytes.create (12 + (4 * n)) in
  let b0 =
    (t.version land 0x3) lsl 6
    lor ((if t.padding then 1 else 0) lsl 5)
    lor (0 lsl 4) (* extension bit: we never generate extensions *)
    lor (n land 0xF)
  in
  let b1 = ((if t.marker then 1 else 0) lsl 7) lor (t.payload_type land 0x7F) in
  Bytes.set_uint8 header 0 b0;
  Bytes.set_uint8 header 1 b1;
  Bytes.set_uint16_be header 2 (t.sequence land 0xFFFF);
  Bytes.set_int32_be header 4 t.timestamp;
  Bytes.set_int32_be header 8 t.ssrc;
  List.iteri (fun i csrc -> Bytes.set_int32_be header (12 + (4 * i)) csrc) t.csrc;
  Bytes.to_string header ^ t.payload

let decode s =
  let len = String.length s in
  if len < 12 then Error "RTP: shorter than fixed header"
  else begin
    let b = Bytes.unsafe_of_string s in
    let b0 = Bytes.get_uint8 b 0 in
    let version = b0 lsr 6 in
    if version <> 2 then Error (Printf.sprintf "RTP: version %d" version)
    else begin
      let padding = b0 land 0x20 <> 0 in
      let extension = b0 land 0x10 <> 0 in
      let cc = b0 land 0xF in
      let b1 = Bytes.get_uint8 b 1 in
      let marker = b1 land 0x80 <> 0 in
      let payload_type = b1 land 0x7F in
      let sequence = Bytes.get_uint16_be b 2 in
      let timestamp = Bytes.get_int32_be b 4 in
      let ssrc = Bytes.get_int32_be b 8 in
      let after_fixed = 12 + (4 * cc) in
      if len < after_fixed then Error "RTP: truncated CSRC list"
      else begin
        let csrc = List.init cc (fun i -> Bytes.get_int32_be b (12 + (4 * i))) in
        let payload_start =
          if not extension then Ok after_fixed
          else if len < after_fixed + 4 then Error "RTP: truncated extension header"
          else begin
            let words = Bytes.get_uint16_be b (after_fixed + 2) in
            let start = after_fixed + 4 + (4 * words) in
            if len < start then Error "RTP: truncated extension body" else Ok start
          end
        in
        match payload_start with
        | Error e -> Error e
        | Ok start ->
            let payload_end =
              if not padding then Ok len
              else begin
                let pad = Bytes.get_uint8 b (len - 1) in
                if pad = 0 || len - pad < start then Error "RTP: bad padding"
                else Ok (len - pad)
              end
            in
            (match payload_end with
            | Error e -> Error e
            | Ok stop ->
                Ok
                  {
                    version;
                    padding;
                    marker;
                    payload_type;
                    sequence;
                    timestamp;
                    ssrc;
                    csrc;
                    payload = String.sub s start (stop - start);
                  })
      end
    end
  end

let pp ppf t =
  Format.fprintf ppf "RTP pt=%d seq=%d ts=%ld ssrc=%08lx len=%d%s" t.payload_type t.sequence
    t.timestamp t.ssrc (String.length t.payload)
    (if t.marker then " M" else "")

let seq_delta a b =
  let d = (b - a) land 0xFFFF in
  if d >= 0x8000 then d - 0x10000 else d

let seq_lt a b = seq_delta a b > 0

let ts_delta a b =
  let d = Int32.sub b a in
  Int32.to_int d
