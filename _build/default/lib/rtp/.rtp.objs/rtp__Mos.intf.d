lib/rtp/mos.mli:
