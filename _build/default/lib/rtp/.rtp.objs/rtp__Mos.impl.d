lib/rtp/mos.ml: Float
