lib/rtp/playout.mli: Dsim
