lib/rtp/rtcp.ml: Bytes Format List Printf Result String
