lib/rtp/rtp_packet.ml: Bytes Format Int32 List Printf String
