lib/rtp/rtp_packet.mli: Format
