lib/rtp/session.ml: Codec Dsim Float Int32 Jitter Rtp_packet Stdlib String
