lib/rtp/session.mli: Codec Dsim Jitter Rtp_packet
