lib/rtp/jitter.mli: Dsim
