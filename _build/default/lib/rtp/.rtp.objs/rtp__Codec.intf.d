lib/rtp/codec.mli: Dsim
