lib/rtp/codec.ml: Dsim List
