lib/rtp/jitter.ml: Dsim Float Rtp_packet
