lib/rtp/playout.ml: Dsim
