type report_block = {
  ssrc : int32;
  fraction_lost : int;
  cumulative_lost : int;
  highest_seq : int32;
  jitter : int32;
}

type t =
  | Sender_report of {
      ssrc : int32;
      ntp_sec : int32;
      rtp_ts : int32;
      packet_count : int32;
      octet_count : int32;
      blocks : report_block list;
    }
  | Receiver_report of { ssrc : int32; blocks : report_block list }

let pt_sr = 200
let pt_rr = 201

let block_bytes block =
  let b = Bytes.create 24 in
  Bytes.set_int32_be b 0 block.ssrc;
  Bytes.set_uint8 b 4 (block.fraction_lost land 0xFF);
  (* 24-bit cumulative loss *)
  Bytes.set_uint8 b 5 ((block.cumulative_lost lsr 16) land 0xFF);
  Bytes.set_uint8 b 6 ((block.cumulative_lost lsr 8) land 0xFF);
  Bytes.set_uint8 b 7 (block.cumulative_lost land 0xFF);
  Bytes.set_int32_be b 8 block.highest_seq;
  Bytes.set_int32_be b 12 block.jitter;
  Bytes.set_int32_be b 16 0l (* LSR *);
  Bytes.set_int32_be b 20 0l (* DLSR *);
  b

let decode_block b off =
  {
    ssrc = Bytes.get_int32_be b off;
    fraction_lost = Bytes.get_uint8 b (off + 4);
    cumulative_lost =
      (Bytes.get_uint8 b (off + 5) lsl 16)
      lor (Bytes.get_uint8 b (off + 6) lsl 8)
      lor Bytes.get_uint8 b (off + 7);
    highest_seq = Bytes.get_int32_be b (off + 8);
    jitter = Bytes.get_int32_be b (off + 12);
  }

let encode t =
  let blocks, pt, ssrc, sr_info =
    match t with
    | Sender_report { ssrc; ntp_sec; rtp_ts; packet_count; octet_count; blocks } ->
        (blocks, pt_sr, ssrc, Some (ntp_sec, rtp_ts, packet_count, octet_count))
    | Receiver_report { ssrc; blocks } -> (blocks, pt_rr, ssrc, None)
  in
  let n = List.length blocks in
  if n > 31 then invalid_arg "Rtcp.encode: too many report blocks";
  let sr_len = match sr_info with Some _ -> 20 | None -> 0 in
  let total = 8 + sr_len + (24 * n) in
  let words = (total / 4) - 1 in
  let b = Bytes.create total in
  Bytes.set_uint8 b 0 ((2 lsl 6) lor n);
  Bytes.set_uint8 b 1 pt;
  Bytes.set_uint16_be b 2 words;
  Bytes.set_int32_be b 4 ssrc;
  (match sr_info with
  | None -> ()
  | Some (ntp_sec, rtp_ts, packet_count, octet_count) ->
      Bytes.set_int32_be b 8 ntp_sec;
      Bytes.set_int32_be b 12 0l (* NTP fraction *);
      Bytes.set_int32_be b 16 rtp_ts;
      Bytes.set_int32_be b 20 packet_count;
      Bytes.set_int32_be b 24 octet_count);
  List.iteri
    (fun i block -> Bytes.blit (block_bytes block) 0 b (8 + sr_len + (24 * i)) 24)
    blocks;
  Bytes.to_string b

let decode s =
  let len = String.length s in
  if len < 8 then Error "RTCP: too short"
  else begin
    let b = Bytes.unsafe_of_string s in
    let b0 = Bytes.get_uint8 b 0 in
    if b0 lsr 6 <> 2 then Error "RTCP: bad version"
    else begin
      let count = b0 land 0x1F in
      let pt = Bytes.get_uint8 b 1 in
      let ssrc = Bytes.get_int32_be b 4 in
      let read_blocks off =
        if len < off + (24 * count) then Error "RTCP: truncated report blocks"
        else Ok (List.init count (fun i -> decode_block b (off + (24 * i))))
      in
      if pt = pt_sr then
        if len < 28 then Error "RTCP: truncated sender info"
        else
          Result.map
            (fun blocks ->
              Sender_report
                {
                  ssrc;
                  ntp_sec = Bytes.get_int32_be b 8;
                  rtp_ts = Bytes.get_int32_be b 16;
                  packet_count = Bytes.get_int32_be b 20;
                  octet_count = Bytes.get_int32_be b 24;
                  blocks;
                })
            (read_blocks 28)
      else if pt = pt_rr then
        Result.map (fun blocks -> Receiver_report { ssrc; blocks }) (read_blocks 8)
      else Error (Printf.sprintf "RTCP: unsupported packet type %d" pt)
    end
  end

let pp ppf = function
  | Sender_report { ssrc; packet_count; _ } ->
      Format.fprintf ppf "RTCP SR ssrc=%08lx packets=%ld" ssrc packet_count
  | Receiver_report { ssrc; blocks } ->
      Format.fprintf ppf "RTCP RR ssrc=%08lx blocks=%d" ssrc (List.length blocks)
