module Sender = struct
  type t = {
    ssrc : int32;
    codec : Codec.t;
    mutable sequence : int;
    mutable timestamp : int32;
    mutable sent : int;
    mutable marker_pending : bool;
  }

  let create ~ssrc ~codec ~initial_seq ~initial_ts =
    {
      ssrc;
      codec;
      sequence = initial_seq land 0xFFFF;
      timestamp = initial_ts;
      sent = 0;
      marker_pending = true;
    }

  let ssrc t = t.ssrc
  let codec t = t.codec

  let next_packet t =
    let payload = String.make (Codec.payload_size t.codec) '\x55' in
    let packet =
      Rtp_packet.make ~marker:t.marker_pending ~payload_type:t.codec.Codec.payload_type
        ~sequence:t.sequence ~timestamp:t.timestamp ~ssrc:t.ssrc payload
    in
    t.marker_pending <- false;
    t.sequence <- (t.sequence + 1) land 0xFFFF;
    t.timestamp <- Int32.add t.timestamp (Int32.of_int (Codec.timestamp_increment t.codec));
    t.sent <- t.sent + 1;
    packet

  let skip_silence t gap =
    let ticks =
      Dsim.Time.to_sec gap *. float_of_int t.codec.Codec.clock_rate |> Float.round
      |> int_of_float
    in
    t.timestamp <- Int32.add t.timestamp (Int32.of_int ticks);
    t.marker_pending <- true

  let packets_sent t = t.sent
  let current_sequence t = t.sequence
  let current_timestamp t = t.timestamp
end

module Receiver = struct
  type t = {
    mutable received : int;
    mutable highest : int option;
    mutable expected : int;
    mutable out_of_order : int;
    jitter : Jitter.t;
  }

  let create ~clock_rate =
    {
      received = 0;
      highest = None;
      expected = 0;
      out_of_order = 0;
      jitter = Jitter.create ~clock_rate;
    }

  let observe t ~arrival (packet : Rtp_packet.t) =
    t.received <- t.received + 1;
    Jitter.observe t.jitter ~arrival ~rtp_timestamp:packet.Rtp_packet.timestamp;
    let seq = packet.Rtp_packet.sequence in
    match t.highest with
    | None ->
        t.highest <- Some seq;
        t.expected <- 1
    | Some high ->
        if Rtp_packet.seq_lt high seq then begin
          t.expected <- t.expected + Rtp_packet.seq_delta high seq;
          t.highest <- Some seq
        end
        else t.out_of_order <- t.out_of_order + 1

  let packets_received t = t.received
  let lost t = Stdlib.max 0 (t.expected - t.received)
  let out_of_order t = t.out_of_order
  let jitter t = t.jitter
  let highest_seq t = t.highest
end
