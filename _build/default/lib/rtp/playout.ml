type t = { target_delay : Dsim.Time.t; mutable received : int; mutable late : int }

let create ~target_delay = { target_delay; received = 0; late = 0 }

let offer t ~capture ~arrival =
  t.received <- t.received + 1;
  let deadline = Dsim.Time.add capture t.target_delay in
  if Dsim.Time.( > ) arrival deadline then begin
    t.late <- t.late + 1;
    `Late
  end
  else `On_time

let received t = t.received
let late t = t.late

let late_fraction t =
  if t.received = 0 then 0.0 else float_of_int t.late /. float_of_int t.received
