(** RTP sender/receiver session state (one SSRC each way). *)

module Sender : sig
  type t

  val create : ssrc:int32 -> codec:Codec.t -> initial_seq:int -> initial_ts:int32 -> t

  val ssrc : t -> int32

  val codec : t -> Codec.t

  val next_packet : t -> Rtp_packet.t
  (** Produces the next in-order media packet (synthetic payload bytes) and
      advances sequence and timestamp.  The first packet carries the
      marker bit (talkspurt start). *)

  val skip_silence : t -> Dsim.Time.t -> unit
  (** Models a silence-suppression gap (no packets emitted): the RTP
      timestamp advances by the gap's worth of media clock ticks while the
      sequence number stays put, and the next packet carries the marker
      bit — RFC 3550 §5.1 talkspurt semantics. *)

  val packets_sent : t -> int

  val current_sequence : t -> int
  (** Sequence number the next packet will carry. *)

  val current_timestamp : t -> int32
end

module Receiver : sig
  type t

  val create : clock_rate:int -> t

  val observe : t -> arrival:Dsim.Time.t -> Rtp_packet.t -> unit
  (** Updates counters, loss tracking and the jitter estimator. *)

  val packets_received : t -> int

  val lost : t -> int
  (** Expected-minus-received estimate from sequence numbers (never
      negative). *)

  val out_of_order : t -> int

  val jitter : t -> Jitter.t

  val highest_seq : t -> int option
end
