(** RFC 3550 §6.4.1 interarrival jitter estimator.

    J(i) = J(i-1) + (|D(i-1,i)| - J(i-1)) / 16, where D compares the spacing
    of arrival times against the spacing of RTP timestamps. *)

type t

val create : clock_rate:int -> t

val observe : t -> arrival:Dsim.Time.t -> rtp_timestamp:int32 -> unit

val jitter_ticks : t -> float
(** Current estimate in RTP timestamp units. *)

val jitter_seconds : t -> float

val samples : t -> int
