(** Minimal RTCP (RFC 3550 §6): sender and receiver report encode/decode.

    Only what the media endpoints need to exchange reception quality; vIDS
    does not inspect RTCP, but the testbed generates it so background
    traffic is realistic. *)

type report_block = {
  ssrc : int32;  (** Source this block reports on. *)
  fraction_lost : int;  (** 0..255. *)
  cumulative_lost : int;
  highest_seq : int32;
  jitter : int32;
}

type t =
  | Sender_report of {
      ssrc : int32;
      ntp_sec : int32;
      rtp_ts : int32;
      packet_count : int32;
      octet_count : int32;
      blocks : report_block list;
    }
  | Receiver_report of { ssrc : int32; blocks : report_block list }

val encode : t -> string

val decode : string -> (t, string) result

val pp : Format.formatter -> t -> unit
