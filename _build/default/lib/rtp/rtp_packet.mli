(** RTP packets (RFC 3550 §5.1) with a real binary wire codec.

    The 12-byte fixed header is encoded and decoded bit-for-bit; CSRC lists
    and header extensions are supported on decode so fuzzed inputs exercise
    the full format. *)

type t = {
  version : int;  (** 2 on everything we generate. *)
  padding : bool;
  marker : bool;
  payload_type : int;  (** 0..127. *)
  sequence : int;  (** 16-bit, wraps. *)
  timestamp : int32;  (** media clock units *)
  ssrc : int32;
  csrc : int32 list;
  payload : string;
}

val make :
  ?marker:bool -> payload_type:int -> sequence:int -> timestamp:int32 -> ssrc:int32 ->
  string -> t

val encode : t -> string

val decode : string -> (t, string) result

val header_size : t -> int

val pp : Format.formatter -> t -> unit

val seq_lt : int -> int -> bool
(** [seq_lt a b]: does sequence number [a] precede [b] in RFC 1982 serial
    number arithmetic (mod 2^16)? *)

val seq_delta : int -> int -> int
(** [seq_delta a b] is the signed distance from [a] to [b] (i.e. [b - a]
    mod 2^16, in [-32768, 32767]). *)

val ts_delta : int32 -> int32 -> int
(** Signed 32-bit timestamp distance, for gap detection. *)
