(** Receiver-side playout (de-jitter) buffer model.

    Each packet is scheduled for playback at [capture_time + target_delay];
    packets arriving after their slot are late (discarded by a real phone),
    which converts network jitter into an audible loss rate.  This is the
    stage at which the paper's QoS concern — added delay and jitter from an
    inline IDS — becomes perceptible. *)

type t

val create : target_delay:Dsim.Time.t -> t
(** [target_delay] is the fixed buffer depth (a common phone default is
    40–80 ms). *)

val offer : t -> capture:Dsim.Time.t -> arrival:Dsim.Time.t -> [ `On_time | `Late ]
(** Classifies one packet and updates the counters.  [capture] is when the
    sender produced the packet (its wire send time), [arrival] the
    receiver-side arrival. *)

val received : t -> int

val late : t -> int

val late_fraction : t -> float
(** 0 when nothing was received. *)
