(* Base rating minus the G.729 codec impairment (Ie = 11) and the default
   simultaneous-impairment term. *)
let r_base = 94.2 -. 11.0 -. 1.0

(* Id per the E-model's piecewise approximation: negligible below ~177 ms,
   then growing sharply. *)
let delay_impairment delay_s =
  let d = delay_s *. 1000.0 in
  let base = 0.024 *. d in
  if d <= 177.3 then base else base +. (0.11 *. (d -. 177.3))

(* Ie-eff for random loss with G.729 (Bpl = 19). *)
let loss_impairment loss =
  if loss <= 0.0 then 0.0 else 30.0 *. (loss /. (loss +. 0.19)) *. 4.0

let r_factor ~one_way_delay ~loss_fraction =
  r_base -. delay_impairment one_way_delay -. loss_impairment loss_fraction

let mos_of_r r =
  let r = Float.max 0.0 (Float.min 100.0 r) in
  let mos = 1.0 +. (0.035 *. r) +. (r *. (r -. 60.0) *. (100.0 -. r) *. 7e-6) in
  Float.max 1.0 (Float.min 4.5 mos)

let mos ~one_way_delay ~loss_fraction = mos_of_r (r_factor ~one_way_delay ~loss_fraction)

let verdict m =
  if m >= 4.0 then "good" else if m >= 3.6 then "fair" else if m >= 3.1 then "poor" else "bad"
