type t = {
  clock_rate : int;
  mutable jitter : float; (* in timestamp ticks *)
  mutable last : (Dsim.Time.t * int32) option;
  mutable samples : int;
}

let create ~clock_rate = { clock_rate; jitter = 0.0; last = None; samples = 0 }

let observe t ~arrival ~rtp_timestamp =
  (match t.last with
  | None -> ()
  | Some (prev_arrival, prev_ts) ->
      let arrival_ticks =
        Dsim.Time.to_sec (Dsim.Time.sub arrival prev_arrival) *. float_of_int t.clock_rate
      in
      let ts_ticks = float_of_int (Rtp_packet.ts_delta prev_ts rtp_timestamp) in
      let d = Float.abs (arrival_ticks -. ts_ticks) in
      t.jitter <- t.jitter +. ((d -. t.jitter) /. 16.0));
  t.last <- Some (arrival, rtp_timestamp);
  t.samples <- t.samples + 1

let jitter_ticks t = t.jitter
let jitter_seconds t = t.jitter /. float_of_int t.clock_rate
let samples t = t.samples
