type t = {
  name : string;
  payload_type : int;
  clock_rate : int;
  frame_ms : float;
  frames_per_packet : int;
  bytes_per_frame : int;
}

let g729 =
  {
    name = "G.729";
    payload_type = 18;
    clock_rate = 8000;
    frame_ms = 10.0;
    frames_per_packet = 2;
    bytes_per_frame = 10;
  }

let g711u =
  {
    name = "G.711u";
    payload_type = 0;
    clock_rate = 8000;
    frame_ms = 20.0;
    frames_per_packet = 1;
    bytes_per_frame = 160;
  }

let packet_interval t = Dsim.Time.of_ms (t.frame_ms *. float_of_int t.frames_per_packet)

let timestamp_increment t =
  int_of_float
    (float_of_int t.clock_rate *. t.frame_ms *. float_of_int t.frames_per_packet /. 1000.0)

let payload_size t = t.bytes_per_frame * t.frames_per_packet
let of_payload_type pt = List.find_opt (fun c -> c.payload_type = pt) [ g729; g711u ]
