(** Simplified ITU-T G.107 E-model: voice quality from delay and loss.

    Computes the transmission rating R and maps it to a mean opinion score
    (MOS).  Only the terms that the vIDS experiments move are modeled: the
    one-way-delay impairment Id and the equipment/loss impairment Ie for
    G.729.  Good enough to quantify the paper's claim that the IDS's 1.5 ms
    of added media delay "will not be perceived by VoIP service
    subscribers". *)

val r_factor : one_way_delay:float -> loss_fraction:float -> float
(** [one_way_delay] in seconds (mouth-to-ear), [loss_fraction] in [0,1].
    Base R for G.729 is ≈ 82.2 (R0 94.2 − Ie 11 − Is 1); delay starts to
    hurt beyond ≈ 177 ms per the E-model's Id curve. *)

val mos_of_r : float -> float
(** ITU-T G.107 Annex B mapping, clamped to [1.0, 4.5]. *)

val mos : one_way_delay:float -> loss_fraction:float -> float

val verdict : float -> string
(** Conventional MOS bands: ≥4.0 "good", ≥3.6 "fair", ≥3.1 "poor",
    otherwise "bad". *)
