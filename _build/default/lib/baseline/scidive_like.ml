type session = {
  mutable established : bool;
  mutable bye_at : Dsim.Time.t option;
  mutable invite_src : string option;
  mutable media : Dsim.Addr.t list;
  mutable alerted : (string, unit) Hashtbl.t;
}

type t = {
  sched : Dsim.Scheduler.t;
  bye_grace : Dsim.Time.t;
  sessions : (string, session) Hashtbl.t;
  media_index : (string, string) Hashtbl.t;
  mutable alerts : int;
}

let create ?(bye_grace = Dsim.Time.of_ms 250.0) sched () =
  {
    sched;
    bye_grace;
    sessions = Hashtbl.create 64;
    media_index = Hashtbl.create 64;
    alerts = 0;
  }

let session t call_id =
  match Hashtbl.find_opt t.sessions call_id with
  | Some s -> s
  | None ->
      let s =
        {
          established = false;
          bye_at = None;
          invite_src = None;
          media = [];
          alerted = Hashtbl.create 4;
        }
      in
      Hashtbl.replace t.sessions call_id s;
      s

let alert t session ~kind ~subject detail =
  let key = Vids.Alert.kind_to_string kind ^ detail in
  if Hashtbl.mem session.alerted key then []
  else begin
    Hashtbl.replace session.alerted key ();
    t.alerts <- t.alerts + 1;
    [ Vids.Alert.make ~kind ~at:(Dsim.Scheduler.now t.sched) ~subject detail ]
  end

let register_media t session call_id msg =
  match (Sip.Msg.content_type msg, msg.Sip.Msg.body) with
  | Some "application/sdp", body when body <> "" -> (
      match Sdp.parse body with
      | Error _ -> ()
      | Ok d -> (
          match Sdp.first_audio d with
          | None -> ()
          | Some m -> (
              match Sdp.media_addr d m with
              | None -> ()
              | Some (host, port) ->
                  let addr = Dsim.Addr.v host port in
                  session.media <- addr :: session.media;
                  Hashtbl.replace t.media_index (Dsim.Addr.to_string addr) call_id)))
  | _ -> ()

let on_sip t (packet : Dsim.Packet.t) msg =
  match Sip.Msg.call_id msg with
  | Error _ -> []
  | Ok call_id -> (
      let s = session t call_id in
      register_media t s call_id msg;
      match msg.Sip.Msg.start with
      | Sip.Msg.Request { meth = Sip.Msg_method.INVITE; _ } ->
          (match s.invite_src with
          | None -> s.invite_src <- Some (Dsim.Addr.host packet.src)
          | Some _ -> ());
          []
      | Sip.Msg.Request { meth = Sip.Msg_method.CANCEL; _ } ->
          (* Rule: CANCEL whose source differs from the INVITE's. *)
          let foreign =
            match s.invite_src with
            | Some src -> not (String.equal src (Dsim.Addr.host packet.src))
            | None -> false
          in
          if foreign then
            alert t s ~kind:Vids.Alert.Cancel_dos ~subject:call_id
              "SCIDIVE rule: CANCEL source differs from INVITE source"
          else []
      | Sip.Msg.Request { meth = Sip.Msg_method.BYE; _ } ->
          s.bye_at <- Some (Dsim.Scheduler.now t.sched);
          []
      | Sip.Msg.Request _ -> []
      | Sip.Msg.Response { code; _ } ->
          (match Sip.Msg.cseq msg with
          | Ok c
            when Sip.Msg_method.equal c.Sip.Cseq.meth Sip.Msg_method.INVITE
                 && Sip.Status.is_success code ->
              s.established <- true
          | _ -> ());
          [])

let on_rtp t (packet : Dsim.Packet.t) =
  match Hashtbl.find_opt t.media_index (Dsim.Addr.to_string packet.dst) with
  | None -> []
  | Some call_id -> (
      let s = session t call_id in
      match s.bye_at with
      | Some bye_time
        when Dsim.Time.( > )
               (Dsim.Time.sub (Dsim.Scheduler.now t.sched) bye_time)
               t.bye_grace ->
          (* Rule: media after teardown (SCIDIVE's cross-protocol check). *)
          alert t s ~kind:Vids.Alert.Bye_dos ~subject:call_id
            "SCIDIVE rule: RTP after BYE grace period"
      | Some _ | None -> [])

let process t (packet : Dsim.Packet.t) =
  let dst_port = Dsim.Addr.port packet.dst in
  if dst_port = 5060 || Dsim.Addr.port packet.src = 5060 then
    match Sip.Msg.parse packet.payload with Ok msg -> on_sip t packet msg | Error _ -> []
  else if dst_port >= 16384 && dst_port <= 32767 && dst_port land 1 = 0 then on_rtp t packet
  else []

let sessions t = Hashtbl.length t.sessions
let alerts_total t = t.alerts
