(** A stateless, per-packet signature matcher in the style the paper
    attributes to Snort [11]: each datagram is inspected in isolation
    against a rule list.

    Used by the ablation benchmark to show what statelessness costs: every
    cross-protocol or multi-packet pattern (BYE DoS, billing fraud, CANCEL
    from a third party, INVITE floods, sequence-gap media spam) is invisible
    because no rule can refer to an earlier packet. *)

type rule = {
  name : string;
  kind : Vids.Alert.kind;
  matches : Dsim.Packet.t -> bool;
}

type t

val create : rule list -> t

val default_rules : rule list
(** Malformed SIP, disallowed RTP payload types, RTP version violations,
    and a CANCEL-from-outside pattern that needs a static site prefix —
    the best a stateless matcher can do against §3's threats. *)

val process : t -> Dsim.Packet.t -> Vids.Alert.t list
(** Alerts triggered by this packet (not deduplicated — stateless). *)

val packets_processed : t -> int

val alerts_total : t -> int
