(** A small textual rule language for the stateless matcher, in the style
    of Snort's rules:

    {v
    alert sip any any -> any 5060 (msg:"options ping"; method:OPTIONS;)
    alert rtp any any -> 10.2.0.10 any (msg:"bad codec"; payload_type:99; kind:media-spam;)
    alert any 203.0.113.66 any -> any any (msg:"known bad host";)
    v}

    Header: [alert <proto> <src-host> <src-port> -> <dst-host> <dst-port>]
    with [any] wildcards; [proto] one of [sip], [rtp], [any].

    Options (all optional, all conjunctive): [msg:"..."] (rule name),
    [kind:<alert-kind>] (one of the vIDS alert-kind names, default
    spec-deviation), [method:<SIP method>], [code:<status>],
    [payload_type:<n>], [content:"substring"]. *)

val parse_rule : string -> (Snort_like.rule, string) result

val parse_rules : string -> (Snort_like.rule list, string) result
(** Whole-file parsing: one rule per line; blank lines and [#] comments are
    skipped.  Fails with the first offending line number. *)

val default_ruleset : string
(** A ruleset text equivalent to {!Snort_like.default_rules} plus a few
    illustrative content rules. *)
