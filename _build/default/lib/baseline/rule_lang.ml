type proto = P_sip | P_rtp | P_any

type compiled = {
  c_msg : string;
  c_kind : Vids.Alert.kind;
  c_proto : proto;
  c_src_host : string option;
  c_src_port : int option;
  c_dst_host : string option;
  c_dst_port : int option;
  c_method : Sip.Msg_method.t option;
  c_code : int option;
  c_payload_type : int option;
  c_content : string option;
}

let ( let* ) r f = Result.bind r f

let kind_of_string = function
  | "invite-flood" -> Ok Vids.Alert.Invite_flood
  | "bye-dos" -> Ok Vids.Alert.Bye_dos
  | "cancel-dos" -> Ok Vids.Alert.Cancel_dos
  | "media-spam" -> Ok Vids.Alert.Media_spam
  | "rtp-flood" -> Ok Vids.Alert.Rtp_flood
  | "call-hijack" -> Ok Vids.Alert.Call_hijack
  | "billing-fraud" -> Ok Vids.Alert.Billing_fraud
  | "drdos" -> Ok Vids.Alert.Drdos
  | "registration-hijack" -> Ok Vids.Alert.Registration_hijack
  | "spec-deviation" -> Ok Vids.Alert.Spec_deviation
  | other -> Error (Printf.sprintf "unknown alert kind %S" other)

let wildcard_host = function "any" -> Ok None | host -> Ok (Some host)

let wildcard_port = function
  | "any" -> Ok None
  | p -> (
      match int_of_string_opt p with
      | Some n when n >= 0 && n <= 65535 -> Ok (Some n)
      | Some _ | None -> Error (Printf.sprintf "bad port %S" p))

(* Split "(msg:"a b"; method:INVITE;)" body into option strings, honouring
   quoted values. *)
let split_options body =
  let parts = ref [] in
  let buffer = Buffer.create 16 in
  let in_quotes = ref false in
  let flush () =
    let piece = String.trim (Buffer.contents buffer) in
    Buffer.clear buffer;
    if piece <> "" then parts := piece :: !parts
  in
  String.iter
    (fun c ->
      match c with
      | '"' ->
          in_quotes := not !in_quotes;
          Buffer.add_char buffer c
      | ';' when not !in_quotes -> flush ()
      | c -> Buffer.add_char buffer c)
    body;
  flush ();
  List.rev !parts

let unquote s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2) else s

let parse_option acc option =
  match String.index_opt option ':' with
  | None -> Error (Printf.sprintf "malformed option %S" option)
  | Some i -> (
      let key = String.trim (String.sub option 0 i) in
      let value = String.trim (String.sub option (i + 1) (String.length option - i - 1)) in
      match key with
      | "msg" -> Ok { acc with c_msg = unquote value }
      | "kind" ->
          let* kind = kind_of_string value in
          Ok { acc with c_kind = kind }
      | "method" -> Ok { acc with c_method = Some (Sip.Msg_method.of_string value) }
      | "code" -> (
          match int_of_string_opt value with
          | Some code -> Ok { acc with c_code = Some code }
          | None -> Error (Printf.sprintf "bad code %S" value))
      | "payload_type" -> (
          match int_of_string_opt value with
          | Some pt -> Ok { acc with c_payload_type = Some pt }
          | None -> Error (Printf.sprintf "bad payload_type %S" value))
      | "content" -> Ok { acc with c_content = Some (unquote value) }
      | other -> Error (Printf.sprintf "unknown option %S" other))

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  n = 0
  ||
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let matches_packet c (packet : Dsim.Packet.t) =
  let host_ok expected actual =
    match expected with None -> true | Some h -> String.equal h actual
  in
  let port_ok expected actual =
    match expected with None -> true | Some p -> p = actual
  in
  host_ok c.c_src_host (Dsim.Addr.host packet.src)
  && port_ok c.c_src_port (Dsim.Addr.port packet.src)
  && host_ok c.c_dst_host (Dsim.Addr.host packet.dst)
  && port_ok c.c_dst_port (Dsim.Addr.port packet.dst)
  &&
  let is_sip_port =
    Dsim.Addr.port packet.dst = 5060 || Dsim.Addr.port packet.src = 5060
  in
  match c.c_proto with
  | P_any ->
      (match c.c_content with None -> true | Some s -> contains ~needle:s packet.payload)
  | P_sip -> (
      is_sip_port
      &&
      match Sip.Msg.parse packet.payload with
      | Error _ -> false
      | Ok msg ->
          (match c.c_method with
          | None -> true
          | Some m -> (
              match msg.Sip.Msg.start with
              | Sip.Msg.Request { meth; _ } -> Sip.Msg_method.equal meth m
              | Sip.Msg.Response _ -> false))
          && (match c.c_code with
             | None -> true
             | Some code -> Sip.Msg.status_of msg = Some code)
          && (match c.c_content with
             | None -> true
             | Some s -> contains ~needle:s packet.payload))
  | P_rtp -> (
      (not is_sip_port)
      &&
      match Rtp.Rtp_packet.decode packet.payload with
      | Error _ -> false
      | Ok p -> (
          match c.c_payload_type with
          | None -> true
          | Some pt -> p.Rtp.Rtp_packet.payload_type = pt))

let compile c =
  {
    Snort_like.name = c.c_msg;
    kind = c.c_kind;
    matches = (fun packet -> matches_packet c packet);
  }

let parse_rule line =
  let line = String.trim line in
  let* header, options =
    match String.index_opt line '(' with
    | None -> Ok (line, "")
    | Some i ->
        let header = String.trim (String.sub line 0 i) in
        let rest = String.sub line (i + 1) (String.length line - i - 1) in
        let rest =
          match String.rindex_opt rest ')' with
          | Some j -> String.sub rest 0 j
          | None -> rest
        in
        Ok (header, rest)
  in
  match String.split_on_char ' ' header |> List.filter (fun s -> s <> "") with
  | [ "alert"; proto; src_host; src_port; "->"; dst_host; dst_port ] ->
      let* c_proto =
        match proto with
        | "sip" -> Ok P_sip
        | "rtp" -> Ok P_rtp
        | "any" -> Ok P_any
        | other -> Error (Printf.sprintf "unknown protocol %S" other)
      in
      let* c_src_host = wildcard_host src_host in
      let* c_src_port = wildcard_port src_port in
      let* c_dst_host = wildcard_host dst_host in
      let* c_dst_port = wildcard_port dst_port in
      let empty =
        {
          c_msg = "unnamed rule";
          c_kind = Vids.Alert.Spec_deviation;
          c_proto;
          c_src_host;
          c_src_port;
          c_dst_host;
          c_dst_port;
          c_method = None;
          c_code = None;
          c_payload_type = None;
          c_content = None;
        }
      in
      let* compiled_rule =
        List.fold_left
          (fun acc option ->
            let* acc = acc in
            parse_option acc option)
          (Ok empty) (split_options options)
      in
      Ok (compile compiled_rule)
  | _ -> Error "expected: alert <proto> <src> <sport> -> <dst> <dport> (options)"

let parse_rules text =
  let lines = String.split_on_char '\n' text in
  let rec go acc line_number = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go acc (line_number + 1) rest
        else (
          match parse_rule trimmed with
          | Ok rule -> go (rule :: acc) (line_number + 1) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" line_number e))
  in
  go [] 1 lines

let default_ruleset =
  {|# vIDS baseline ruleset (stateless)
# Unsolicited CANCELs from outside are worth a look even without state.
alert sip any any -> any 5060 (msg:"external CANCEL"; method:CANCEL; kind:cancel-dos;)
# Registrations should not arrive from the Internet side.
alert sip any any -> any 5060 (msg:"boundary REGISTER"; method:REGISTER; kind:registration-hijack;)
# Media with a payload type nobody provisioned.
alert rtp any any -> any any (msg:"unprovisioned codec"; payload_type:99; kind:media-spam;)
|}
