(** A stateful cross-protocol rule matcher in the style of SCIDIVE (Wu et
    al., DSN 2004), the closest prior system the paper compares against.

    Packets are aggregated into per-session state records; rules fire on the
    aggregated state ("stateful matching") and may correlate SIP with RTP
    ("cross-protocol matching").  Unlike vIDS there is no protocol state
    machine: only the rule-matching engine's flags, so a behaviour not
    anticipated by a rule — an out-of-place message, an impossible
    transition — passes silently, which is the misuse-detection weakness
    §8 points out. *)

type t

val create : ?bye_grace:Dsim.Time.t -> Dsim.Scheduler.t -> unit -> t

val process : t -> Dsim.Packet.t -> Vids.Alert.t list

val sessions : t -> int

val alerts_total : t -> int
