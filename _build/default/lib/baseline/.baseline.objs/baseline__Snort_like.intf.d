lib/baseline/snort_like.mli: Dsim Vids
