lib/baseline/rule_lang.mli: Snort_like
