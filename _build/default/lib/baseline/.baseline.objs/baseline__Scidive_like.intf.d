lib/baseline/scidive_like.mli: Dsim Vids
