lib/baseline/rule_lang.ml: Buffer Dsim List Printf Result Rtp Sip Snort_like String Vids
