lib/baseline/snort_like.ml: Char Dsim List Result Rtp Sip String Vids
