lib/baseline/scidive_like.ml: Dsim Hashtbl Sdp Sip String Vids
