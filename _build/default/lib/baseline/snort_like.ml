type rule = { name : string; kind : Vids.Alert.kind; matches : Dsim.Packet.t -> bool }

type t = { rules : rule list; mutable packets : int; mutable alerts : int }

let create rules = { rules; packets = 0; alerts = 0 }

let is_sip (packet : Dsim.Packet.t) =
  Dsim.Addr.port packet.dst = 5060 || Dsim.Addr.port packet.src = 5060

let default_rules =
  [
    {
      name = "malformed-sip";
      kind = Vids.Alert.Spec_deviation;
      matches =
        (fun packet ->
          is_sip packet && Result.is_error (Sip.Msg.parse packet.Dsim.Packet.payload));
    };
    {
      name = "rtp-bad-version";
      kind = Vids.Alert.Spec_deviation;
      matches =
        (fun packet ->
          let port = Dsim.Addr.port packet.dst in
          port >= 16384 && port <= 32767 && port land 1 = 0
          && String.length packet.payload >= 12
          && Char.code packet.payload.[0] lsr 6 <> 2);
    };
    {
      name = "rtp-disallowed-codec";
      kind = Vids.Alert.Media_spam;
      matches =
        (fun packet ->
          let port = Dsim.Addr.port packet.dst in
          port >= 16384 && port <= 32767 && port land 1 = 0
          &&
          match Rtp.Rtp_packet.decode packet.payload with
          | Ok p ->
              (* Only G.729 (18) and G.711 (0/8) are provisioned. *)
              not (List.mem p.Rtp.Rtp_packet.payload_type [ 0; 8; 18 ])
          | Error _ -> false);
    };
  ]

let process t packet =
  t.packets <- t.packets + 1;
  List.filter_map
    (fun rule ->
      if rule.matches packet then begin
        t.alerts <- t.alerts + 1;
        Some
          (Vids.Alert.make ~kind:rule.kind ~at:packet.Dsim.Packet.sent_at
             ~subject:(Dsim.Addr.to_string packet.Dsim.Packet.dst)
             ("snort-like rule " ^ rule.name))
      end
      else None)
    t.rules

let packets_processed t = t.packets
let alerts_total t = t.alerts
