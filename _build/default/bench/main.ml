(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§7), plus the ablation against baseline detectors and real
   microbenchmarks (bechamel) of the per-packet costs underlying the
   calibrated model.  See EXPERIMENTS.md for paper-vs-measured numbers.

   Run with: dune exec bench/main.exe *)

module T = Voip.Testbed

let sec = Dsim.Time.of_sec

let banner title =
  Format.printf "@.=================================================================@.";
  Format.printf "%s@." title;
  Format.printf "=================================================================@."

(* The paper's workload: 120 minutes, random arrivals and durations
   (Figure 8 shows ~45 calls with durations up to ~500 s). *)
let paper_profile =
  {
    Voip.Call_generator.mean_interarrival = sec 1600.0;
    mean_duration = sec 90.0;
    min_duration = sec 5.0;
  }

let workload_minutes = 120.0

type run_result = {
  tb : T.t;
  setup_mean : float;
  setup_median : float;
  rtp_delay_mean : float;
  jitter_mean : float;
  delay_variation_mean : float;
}

let run_workload mode =
  let tb = T.make ~seed:2006 ~vids:mode () in
  T.run_workload tb ~profile:paper_profile ~duration:(sec (60.0 *. workload_minutes)) ();
  let m = tb.T.metrics in
  let setup_samples =
    List.concat_map
      (fun caller ->
        match Voip.Metrics.setup_series m ~caller with
        | Some series -> Array.to_list (Dsim.Stat.Series.values series)
        | None -> [])
      (Voip.Metrics.callers m)
  in
  {
    tb;
    setup_mean = Dsim.Stat.Summary.mean (Voip.Metrics.setup_all m);
    setup_median = Dsim.Stat.percentile (Array.of_list setup_samples) 50.0;
    rtp_delay_mean = Dsim.Stat.Summary.mean (Dsim.Stat.Series.summary (Voip.Metrics.rtp_delay m));
    jitter_mean = Dsim.Stat.Summary.mean (Voip.Metrics.jitter_summary m);
    delay_variation_mean =
      Dsim.Stat.Summary.mean (Dsim.Stat.Series.summary (Voip.Metrics.delay_variation m));
  }

(* ------------------------------------------------------------------ *)
(* Figure 8: call arrivals and durations                               *)
(* ------------------------------------------------------------------ *)

let fig8 (run : run_result) =
  banner "Figure 8: call request arrivals and call durations (120 min workload)";
  let arrivals = Voip.Metrics.arrivals run.tb.T.metrics in
  Format.printf "total call arrivals: %d@." (Dsim.Stat.Series.length arrivals);
  Format.printf "call duration: %a (seconds)@." Dsim.Stat.Summary.pp
    (Dsim.Stat.Series.summary arrivals);
  Format.printf "@.%10s %10s %14s@." "t (min)" "arrivals" "mean dur (s)";
  let bucket = Dsim.Time.of_sec 600.0 in
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (at, _) ->
      let k = at / bucket in
      Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0))
    (Dsim.Stat.Series.to_list arrivals);
  List.iter
    (fun (at, mean_duration) ->
      Format.printf "%10.0f %10d %14.1f@."
        (Dsim.Time.to_sec at /. 60.0)
        (Option.value (Hashtbl.find_opt counts (at / bucket)) ~default:0)
        mean_duration)
    (Dsim.Stat.Series.bucket_mean arrivals ~bucket)

(* ------------------------------------------------------------------ *)
(* Figure 9: call setup delay with and without vIDS                    *)
(* ------------------------------------------------------------------ *)

let fig9 (with_ : run_result) (without : run_result) =
  banner "Figure 9: call setup delay, with vs without vIDS";
  let caller_row name =
    let series tb = Voip.Metrics.setup_series tb.T.metrics ~caller:name in
    match (series with_.tb, series without.tb) with
    | Some sw, Some so ->
        Format.printf "%10s %6d calls %9.3f s %9.3f s@." name (Dsim.Stat.Series.length sw)
          (Dsim.Stat.Summary.mean (Dsim.Stat.Series.summary sw))
          (Dsim.Stat.Summary.mean (Dsim.Stat.Series.summary so))
    | _ -> Format.printf "%10s (no calls this run)@." name
  in
  Format.printf "%10s %12s %11s %10s@." "caller" "" "with vIDS" "without";
  (* The paper plots callers 3 and 4; print those. *)
  List.iter caller_row [ "a3"; "a4" ];
  Format.printf "@.all callers: with vIDS mean %.3f / median %.3f s, without %.3f / %.3f s@."
    with_.setup_mean with_.setup_median without.setup_mean without.setup_median;
  (* The median sidesteps retransmission outliers (an INVITE lost on the
     0.42%%-loss uplink retries after 500 ms, as in the paper's scatter). *)
  Format.printf "=> delay induced by vIDS to call setup: %.0f ms median (%.0f ms mean; paper: ~100 ms)@."
    (1000.0 *. (with_.setup_median -. without.setup_median))
    (1000.0 *. (with_.setup_mean -. without.setup_mean));
  (* Time series like the paper's scatter plot. *)
  match Voip.Metrics.setup_series with_.tb.T.metrics ~caller:"a3" with
  | Some series ->
      Format.printf "@.caller a3 setup delay over time (with vIDS):@.";
      List.iter
        (fun (at, v) -> Format.printf "  t=%6.0fs  %.3f s@." (Dsim.Time.to_sec at) v)
        (Dsim.Stat.Series.to_list series)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* §7.3: CPU overhead and memory cost                                  *)
(* ------------------------------------------------------------------ *)

let cpu_overhead (with_ : run_result) =
  banner "Section 7.3: CPU overhead introduced by vIDS";
  let engine = T.engine_exn with_.tb in
  let busy = Dsim.Time.to_sec (Vids.Engine.cpu_busy engine) in
  let duration = 60.0 *. workload_minutes in
  let c = Vids.Engine.counters engine in
  Format.printf "packets analyzed: %d SIP, %d RTP, %d RTCP@." c.Vids.Engine.sip_packets
    c.Vids.Engine.rtp_packets c.Vids.Engine.rtcp_packets;
  Format.printf "modeled analysis busy time: %.1f s over %.0f s simulated@." busy duration;
  Format.printf "=> CPU overhead: %.1f%% (paper: 3.6%%)@." (100.0 *. busy /. duration)

let memory_cost (with_ : run_result) =
  banner "Section 7.3: memory cost of call monitoring";
  let engine = T.engine_exn with_.tb in
  let stats = Vids.Engine.memory_stats engine in
  let config = Vids.Engine.config engine in
  let per_call = config.Vids.Config.sip_state_bytes + config.Vids.Config.rtp_state_bytes in
  Format.printf "per-call state: %d B SIP + %d B RTP = %d B (paper: ~450 B + ~40 B)@."
    config.Vids.Config.sip_state_bytes config.Vids.Config.rtp_state_bytes per_call;
  Format.printf "workload: %d calls created, %d deleted, peak %d concurrent@."
    stats.Vids.Fact_base.calls_created stats.Vids.Fact_base.calls_deleted
    stats.Vids.Fact_base.peak_calls;
  Format.printf "@.%18s %16s@." "concurrent calls" "memory";
  List.iter
    (fun n ->
      let bytes = n * per_call in
      Format.printf "%18d %13.1f KB@." n (float_of_int bytes /. 1024.0))
    [ 1; 10; 100; 1_000; 10_000 ];
  Format.printf "=> thousands of simultaneous calls fit in a few MB (paper's claim)@."

(* ------------------------------------------------------------------ *)
(* Figure 10: impact on RTP streams                                    *)
(* ------------------------------------------------------------------ *)

let fig10 (with_ : run_result) (without : run_result) =
  banner "Figure 10: impact of vIDS on QoS of RTP streams";
  Format.printf "%28s %14s %14s@." "" "with vIDS" "without";
  Format.printf "%28s %11.2f ms %11.2f ms@." "RTP one-way delay (mean)"
    (1000.0 *. with_.rtp_delay_mean)
    (1000.0 *. without.rtp_delay_mean);
  Format.printf "%28s %11.3g s  %11.3g s@." "delay variation (mean)" with_.delay_variation_mean
    without.delay_variation_mean;
  Format.printf "%28s %11.3g s  %11.3g s@." "RFC 3550 jitter (mean)" with_.jitter_mean
    without.jitter_mean;
  Format.printf "=> vIDS adds %.2f ms to RTP delay (paper: ~1.5 ms);@."
    (1000.0 *. (with_.rtp_delay_mean -. without.rtp_delay_mean));
  Format.printf "   delay-variation delta %.2g s (paper: ~1e-4 s)@."
    (with_.delay_variation_mean -. without.delay_variation_mean);
  (* Perceived voice quality (simplified E-model; loss = wire loss plus
     packets missing the 60 ms playout deadline). *)
  let mos_of (r : run_result) =
    let late = Dsim.Stat.Summary.mean (Voip.Metrics.playout_late_summary r.tb.T.metrics) in
    Rtp.Mos.mos ~one_way_delay:r.rtp_delay_mean ~loss_fraction:(0.0042 +. late)
  in
  let mos_with = mos_of with_ and mos_without = mos_of without in
  Format.printf "%28s %8.2f (%s) %8.2f (%s)@." "MOS (E-model)" mos_with
    (Rtp.Mos.verdict mos_with) mos_without
    (Rtp.Mos.verdict mos_without);
  Format.printf
    "=> the inline IDS costs %.2f MOS (paper: impact \"will not be perceived by@."
    (mos_without -. mos_with);
  Format.printf "   VoIP service subscribers\")@.";
  (* The DS1 uplinks are the capacity bottleneck; report their usage. *)
  Format.printf "@.uplink usage over the workload:@.";
  List.iter
    (fun (ls : Dsim.Network.link_stats) ->
      if ls.Dsim.Network.rate_bps > 0.0 && ls.Dsim.Network.rate_bps < 1e7 then
        Format.printf "  %8s -> %-8s %9d pkts %10.1f MB  avg util %4.1f%% loss %d@."
          ls.Dsim.Network.from_node ls.Dsim.Network.to_node ls.Dsim.Network.tx_packets
          (float_of_int ls.Dsim.Network.tx_bytes /. 1e6)
          (100.0
          *. (float_of_int ls.Dsim.Network.tx_bytes *. 8.0)
          /. (ls.Dsim.Network.rate_bps *. 60.0 *. workload_minutes))
          ls.Dsim.Network.lost_packets)
    (Dsim.Network.link_stats with_.tb.T.net)

(* ------------------------------------------------------------------ *)
(* §7.5: detection accuracy                                            *)
(* ------------------------------------------------------------------ *)

let detection_accuracy () =
  banner "Section 7.5: detection accuracy (every threat of Section 3)";
  let tb = T.make ~seed:7575 ~vids:T.Monitor () in
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  let ua_a n = List.nth tb.T.uas_a n and ua_b n = List.nth tb.T.uas_b n in
  (* Clean background call. *)
  ignore
    (Dsim.Scheduler.schedule_at tb.T.sched (sec 1.0) (fun () ->
         Voip.Ua.call (ua_a 9) ~callee:(Voip.Ua.aor (ua_b 9)) ~duration:(sec 60.0)));
  Attack.Scenarios.spoofed_bye_call atk ~caller:(ua_a 0) ~callee:(ua_b 0) ~at:(sec 5.0);
  Attack.Scenarios.cancel_dos_call atk ~caller:(ua_a 1) ~callee:(ua_b 1) ~at:(sec 30.0);
  Attack.Scenarios.hijack_call atk ~caller:(ua_a 2) ~callee:(ua_b 2) ~at:(sec 50.0);
  Attack.Scenarios.media_spam_call atk ~caller:(ua_a 3) ~callee:(ua_b 3) ~at:(sec 70.0);
  Attack.Scenarios.billing_fraud_call atk ~caller:(ua_a 4) ~callee:(ua_b 4) ~at:(sec 90.0);
  Attack.Scenarios.invite_flood atk ~target:(Voip.Ua.aor (ua_b 5)) ~via_proxy:true ~count:30
    ~interval:(Dsim.Time.of_ms 50.0) ~at:(sec 110.0);
  Attack.Scenarios.rtp_flood atk
    ~target:(Dsim.Addr.v (T.ua_b_host tb 6) 16500)
    ~rate_pps:400 ~duration:(sec 2.0) ~at:(sec 115.0);
  Attack.Scenarios.drdos atk ~victim_host:(T.ua_b_host tb 7) ~reflectors:20 ~responses:60
    ~at:(sec 120.0);
  T.run_until tb (sec 220.0);
  let engine = T.engine_exn tb in
  let detected kind = List.length (Vids.Engine.alerts_of_kind engine kind) in
  Format.printf "%16s %10s %15s@." "attack" "injected" "alerts raised";
  List.iter
    (fun (name, kind) -> Format.printf "%16s %10d %15d@." name 1 (detected kind))
    [
      ("BYE DoS", Vids.Alert.Bye_dos);
      ("CANCEL DoS", Vids.Alert.Cancel_dos);
      ("call hijack", Vids.Alert.Call_hijack);
      ("media spam", Vids.Alert.Media_spam);
      ("billing fraud", Vids.Alert.Billing_fraud);
      ("INVITE flood", Vids.Alert.Invite_flood);
      ("RTP flood", Vids.Alert.Rtp_flood);
      ("DRDoS", Vids.Alert.Drdos);
    ];
  let c = Vids.Engine.counters engine in
  let total =
    List.fold_left ( + ) 0
      (List.map detected
         [
           Vids.Alert.Bye_dos; Vids.Alert.Cancel_dos; Vids.Alert.Call_hijack;
           Vids.Alert.Media_spam; Vids.Alert.Billing_fraud; Vids.Alert.Invite_flood;
           Vids.Alert.Rtp_flood; Vids.Alert.Drdos;
         ])
  in
  Format.printf "@.=> %d/8 attacks detected; false positives on clean traffic: %d@." total
    (detected Vids.Alert.Spec_deviation);
  Format.printf "   (paper: 100%% detection accuracy with zero false positives)@.";
  Format.printf "   duplicate notifications suppressed: %d@." c.Vids.Engine.alerts_suppressed

(* ------------------------------------------------------------------ *)
(* §7.5: detection sensitivity                                         *)
(* ------------------------------------------------------------------ *)

let detection_sensitivity () =
  banner "Section 7.5: detection sensitivity vs the pattern timers";
  Format.printf "BYE DoS detection latency as a function of the in-flight timer T@.";
  Format.printf "%12s %14s@." "T (ms)" "latency (s)";
  List.iter
    (fun grace_ms ->
      let config =
        { Vids.Config.default with Vids.Config.bye_inflight_timer = Dsim.Time.of_ms grace_ms }
      in
      let tb = T.make ~seed:77 ~n_ua:2 ~vids:T.Monitor ~config () in
      let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
      Attack.Scenarios.spoofed_bye_call atk ~caller:(List.hd tb.T.uas_a)
        ~callee:(List.hd tb.T.uas_b) ~at:(sec 5.0);
      T.run_until tb (sec 40.0);
      match Vids.Engine.alerts_of_kind (T.engine_exn tb) Vids.Alert.Bye_dos with
      | alert :: _ ->
          Format.printf "%12.0f %14.3f@." grace_ms
            (Dsim.Time.to_sec (Dsim.Time.sub alert.Vids.Alert.at (sec 9.0)))
      | [] -> Format.printf "%12.0f %14s@." grace_ms "(missed)")
    [ 100.0; 250.0; 500.0; 1000.0; 2000.0 ];
  Format.printf "@.INVITE flood detection latency as a function of window T1 (N=6)@.";
  Format.printf "%12s %14s@." "T1 (s)" "latency (s)";
  List.iter
    (fun window_s ->
      let config =
        { Vids.Config.default with Vids.Config.invite_flood_window = sec window_s }
      in
      let tb = T.make ~seed:78 ~n_ua:2 ~vids:T.Monitor ~config () in
      let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
      Attack.Scenarios.invite_flood atk ~target:(Voip.Ua.aor (List.hd tb.T.uas_b))
        ~via_proxy:true ~count:30
        ~interval:(Dsim.Time.of_ms 200.0)
        ~at:(sec 2.0);
      T.run_until tb (sec 30.0);
      match Vids.Engine.alerts_of_kind (T.engine_exn tb) Vids.Alert.Invite_flood with
      | alert :: _ ->
          Format.printf "%12.1f %14.3f@." window_s
            (Dsim.Time.to_sec (Dsim.Time.sub alert.Vids.Alert.at (sec 2.0)))
      | [] -> Format.printf "%12.1f %14s@." window_s "(missed: flood slower than N/T1)")
    [ 0.5; 1.0; 2.0; 5.0 ];
  Format.printf
    "@.=> latency tracks the pattern timers, as §7.5 argues; a T of one RTT avoids@.";
  Format.printf "   false alarms from in-flight media (see examples/threshold_tuning.ml)@."

(* ------------------------------------------------------------------ *)
(* Ablation: vIDS vs stateless and rule-based baselines                *)
(* ------------------------------------------------------------------ *)

let ablation () =
  banner "Ablation: cross-protocol EFSMs vs Snort-like and SCIDIVE-like baselines";
  let tb = T.make ~seed:909 ~vids:T.Monitor () in
  let engine = T.engine_exn tb in
  let snort = Baseline.Snort_like.create Baseline.Snort_like.default_rules in
  let scidive = Baseline.Scidive_like.create tb.T.sched () in
  let scidive_kinds = ref [] in
  Dsim.Network.set_tap tb.T.vids_node
    (Some
       (fun packet ->
         Vids.Engine.tap engine packet;
         ignore (Baseline.Snort_like.process snort packet);
         List.iter
           (fun a -> scidive_kinds := a.Vids.Alert.kind :: !scidive_kinds)
           (Baseline.Scidive_like.process scidive packet)));
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  let ua_a n = List.nth tb.T.uas_a n and ua_b n = List.nth tb.T.uas_b n in
  Attack.Scenarios.spoofed_bye_call atk ~caller:(ua_a 0) ~callee:(ua_b 0) ~at:(sec 5.0);
  Attack.Scenarios.cancel_dos_call atk ~caller:(ua_a 1) ~callee:(ua_b 1) ~at:(sec 30.0);
  Attack.Scenarios.hijack_call atk ~caller:(ua_a 2) ~callee:(ua_b 2) ~at:(sec 50.0);
  Attack.Scenarios.media_spam_call atk ~caller:(ua_a 3) ~callee:(ua_b 3) ~at:(sec 70.0);
  Attack.Scenarios.billing_fraud_call atk ~caller:(ua_a 4) ~callee:(ua_b 4) ~at:(sec 90.0);
  T.run_until tb (sec 160.0);
  let vids_detected kind = Vids.Engine.alerts_of_kind engine kind <> [] in
  let scidive_detected kind = List.mem kind !scidive_kinds in
  Format.printf "%16s %8s %14s %12s@." "attack" "vIDS" "SCIDIVE-like" "Snort-like";
  List.iter
    (fun (name, kind, scidive_possible) ->
      Format.printf "%16s %8s %14s %12s@." name
        (if vids_detected kind then "yes" else "NO")
        (if scidive_detected kind then "yes"
         else if scidive_possible then "missed"
         else "no rule")
        "blind")
    [
      ("BYE DoS", Vids.Alert.Bye_dos, true);
      ("CANCEL DoS", Vids.Alert.Cancel_dos, true);
      ("call hijack", Vids.Alert.Call_hijack, false);
      ("media spam", Vids.Alert.Media_spam, false);
      ("billing fraud", Vids.Alert.Billing_fraud, true);
    ];
  Format.printf "@.(SCIDIVE-like detects only what its rules anticipate — its BYE rule@.";
  Format.printf " cannot tell billing fraud from BYE DoS; the stateless matcher sees no@.";
  Format.printf " multi-packet pattern at all.)@."

(* ------------------------------------------------------------------ *)
(* Microbenchmarks: real per-packet costs (bechamel)                   *)
(* ------------------------------------------------------------------ *)

let sample_invite =
  "INVITE sip:bob@b.example SIP/2.0\r\n\
   Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bKbench\r\n\
   Max-Forwards: 70\r\n\
   From: \"Alice\" <sip:alice@a.example>;tag=ta\r\n\
   To: <sip:bob@b.example>\r\n\
   Call-ID: bench-call@10.1.0.10\r\n\
   CSeq: 1 INVITE\r\n\
   Contact: <sip:alice@10.1.0.10:5060>\r\n\
   Content-Type: application/sdp\r\n\
   \r\n\
   v=0\r\no=alice 0 0 IN IP4 10.1.0.10\r\ns=-\r\nc=IN IP4 10.1.0.10\r\nt=0 0\r\n\
   m=audio 16384 RTP/AVP 18\r\n"

let sample_rtp =
  Rtp.Rtp_packet.encode
    (Rtp.Rtp_packet.make ~payload_type:18 ~sequence:100 ~timestamp:16000l ~ssrc:0xBEEFl
       (String.make 20 'x'))

let microbench () =
  banner "Microbenchmarks: measured per-packet costs (bechamel, monotonic clock)";
  let open Bechamel in
  let parsed = Result.get_ok (Sip.Msg.parse sample_invite) in
  (* A standing engine processing a pre-built packet stream exercises the
     full pipeline: classify, parse, distribute, step machines. *)
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create sched in
  let alloc = Dsim.Packet.allocator () in
  let sip_packet =
    Dsim.Packet.make alloc ~src:(Dsim.Addr.v "10.1.0.2" 5060) ~dst:(Dsim.Addr.v "10.2.0.2" 5060)
      ~sent_at:0 sample_invite
  in
  let rtp_packet =
    Dsim.Packet.make alloc
      ~src:(Dsim.Addr.v "10.1.0.10" 16384)
      ~dst:(Dsim.Addr.v "10.2.0.10" 20000)
      ~sent_at:0 sample_rtp
  in
  let tests =
    Test.make_grouped ~name:"vids"
      [
        Test.make ~name:"sip_parse" (Staged.stage (fun () -> Sip.Msg.parse sample_invite));
        Test.make ~name:"sip_serialize" (Staged.stage (fun () -> Sip.Msg.serialize parsed));
        Test.make ~name:"sdp_parse" (Staged.stage (fun () -> Sdp.parse parsed.Sip.Msg.body));
        Test.make ~name:"rtp_decode" (Staged.stage (fun () -> Rtp.Rtp_packet.decode sample_rtp));
        Test.make ~name:"engine_sip_packet"
          (Staged.stage (fun () -> Vids.Engine.process_packet engine sip_packet));
        Test.make ~name:"engine_rtp_packet"
          (Staged.stage (fun () -> Vids.Engine.process_packet engine rtp_packet));
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Format.printf "%28s %16s@." "operation" "ns/op";
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let value =
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Printf.sprintf "%.1f" est
          | Some [] | None -> "n/a"
        in
        (name, value) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, value) -> Format.printf "%28s %16s@." name value) rows;
  Format.printf
    "@.(The calibrated cost model in Vids.Config uses 2 ms CPU per SIP message and@.";
  Format.printf
    " 35 us per RTP packet — 2006-era hardware; the measured numbers above show@.";
  Format.printf " today's per-packet analysis cost for reference.)@."

(* ------------------------------------------------------------------ *)

let () =
  Format.printf "vIDS benchmark harness — reproduces the evaluation of@.";
  Format.printf
    "\"VoIP Intrusion Detection Through Interacting Protocol State Machines\" (DSN'06)@.";
  Format.printf "@.[1/2] running the 120-minute workload with vIDS inline...@.%!";
  let with_ = run_workload T.Inline in
  Format.printf "[2/2] running the same workload without vIDS...@.%!";
  let without = run_workload T.Off in
  fig8 with_;
  fig9 with_ without;
  cpu_overhead with_;
  memory_cost with_;
  fig10 with_ without;
  detection_accuracy ();
  detection_sensitivity ();
  ablation ();
  microbench ();
  banner "done"
