(* The paper's enterprise scenario (Figure 7): two networks, proxies, random
   calls from A to B, with vIDS deployed inline at network B's edge.
   Reports workload, call setup delay and RTP QoS — a miniature of the
   benchmark harness.

   Run with: dune exec examples/enterprise_calls.exe *)

module T = Voip.Testbed

let sec = Dsim.Time.of_sec

let run mode label =
  let tb = T.make ~seed:2026 ~vids:mode () in
  let profile =
    {
      Voip.Call_generator.mean_interarrival = sec 120.0;
      mean_duration = sec 45.0;
      min_duration = sec 5.0;
    }
  in
  T.run_workload tb ~profile ~duration:(sec 900.0) ();
  let m = tb.T.metrics in
  Format.printf "-- %s --@." label;
  Format.printf "   calls: %d attempted, %d established, %d completed, %d failed@."
    (Voip.Metrics.attempted m) (Voip.Metrics.established m) (Voip.Metrics.completed m)
    (Voip.Metrics.failed m);
  Format.printf "   call setup delay: %a@." Dsim.Stat.Summary.pp (Voip.Metrics.setup_all m);
  let rtp = Dsim.Stat.Series.summary (Voip.Metrics.rtp_delay m) in
  Format.printf "   rtp one-way delay: mean %.2f ms over %d packets@."
    (1000.0 *. Dsim.Stat.Summary.mean rtp)
    (Dsim.Stat.Summary.count rtp);
  Format.printf "   rtp jitter (RFC 3550): mean %.3g s@."
    (Dsim.Stat.Summary.mean (Voip.Metrics.jitter_summary m));
  (match tb.T.engine with
  | Some engine ->
      let c = Vids.Engine.counters engine in
      let stats = Vids.Engine.memory_stats engine in
      Format.printf
        "   vIDS: %d SIP / %d RTP packets, %d alerts, %d anomalies, peak %d concurrent calls@."
        c.Vids.Engine.sip_packets c.Vids.Engine.rtp_packets c.Vids.Engine.alerts_raised
        c.Vids.Engine.anomalies stats.Vids.Fact_base.peak_calls
  | None -> ());
  Dsim.Stat.Summary.mean (Voip.Metrics.setup_all m)

let () =
  print_endline "Enterprise IP telephony, 15 simulated minutes of random calls";
  print_endline "(paper Figure 7 topology: DS1 uplinks, 50 ms cloud, 0.42% loss, G.729)";
  let without = run T.Off "without vIDS" in
  let with_ = run T.Inline "with vIDS inline" in
  Format.printf "@.=> vIDS adds %.0f ms to call setup (paper: ~100 ms)@."
    (1000.0 *. (with_ -. without))
