(* Quickstart: build a vIDS engine, feed it a hand-rolled call as wire
   packets, then replay the same call with a spoofed BYE and watch the
   cross-protocol detector fire.

   Run with: dune exec examples/quickstart.exe *)

let sip_addr host = Dsim.Addr.v host 5060

let invite =
  "INVITE sip:bob@b.example SIP/2.0\r\n\
   Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bKq1\r\n\
   From: \"Alice\" <sip:alice@a.example>;tag=ta\r\n\
   To: <sip:bob@b.example>\r\n\
   Call-ID: quickstart-call\r\n\
   CSeq: 1 INVITE\r\n\
   Contact: <sip:alice@10.1.0.10:5060>\r\n\
   Content-Type: application/sdp\r\n\
   \r\n\
   v=0\r\no=alice 0 0 IN IP4 10.1.0.10\r\ns=-\r\nc=IN IP4 10.1.0.10\r\nt=0 0\r\n\
   m=audio 16384 RTP/AVP 18\r\n"

let ok_200 =
  "SIP/2.0 200 OK\r\n\
   Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bKq1\r\n\
   From: \"Alice\" <sip:alice@a.example>;tag=ta\r\n\
   To: <sip:bob@b.example>;tag=tb\r\n\
   Call-ID: quickstart-call\r\n\
   CSeq: 1 INVITE\r\n\
   Contact: <sip:bob@10.2.0.10:5060>\r\n\
   Content-Type: application/sdp\r\n\
   \r\n\
   v=0\r\no=bob 0 0 IN IP4 10.2.0.10\r\ns=-\r\nc=IN IP4 10.2.0.10\r\nt=0 0\r\n\
   m=audio 20000 RTP/AVP 18\r\n"

let ack =
  "ACK sip:bob@10.2.0.10 SIP/2.0\r\n\
   Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKq2\r\n\
   From: \"Alice\" <sip:alice@a.example>;tag=ta\r\n\
   To: <sip:bob@b.example>;tag=tb\r\n\
   Call-ID: quickstart-call\r\nCSeq: 1 ACK\r\n\r\n"

let spoofed_bye =
  "BYE sip:bob@10.2.0.10 SIP/2.0\r\n\
   Via: SIP/2.0/UDP 203.0.113.66:5060;branch=z9hG4bKevil\r\n\
   From: \"Alice\" <sip:alice@a.example>;tag=ta\r\n\
   To: <sip:bob@b.example>;tag=tb\r\n\
   Call-ID: quickstart-call\r\nCSeq: 9 BYE\r\n\r\n"

let rtp ~seq ~ts =
  Rtp.Rtp_packet.encode
    (Rtp.Rtp_packet.make ~payload_type:18 ~sequence:seq ~timestamp:(Int32.of_int ts)
       ~ssrc:0xCAFEl
       (String.make 20 '\x55'))

let () =
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create sched in
  Vids.Engine.on_alert engine (fun alert -> Format.printf "  !! %a@." Vids.Alert.pp alert);
  let alloc = Dsim.Packet.allocator () in
  let feed ~src ~dst payload =
    Vids.Engine.process_packet engine
      (Dsim.Packet.make alloc ~src ~dst ~sent_at:(Dsim.Scheduler.now sched) payload)
  in

  print_endline "== 1. A normal call crosses the sensor ==";
  feed ~src:(sip_addr "10.1.0.2") ~dst:(sip_addr "10.2.0.2") invite;
  feed ~src:(sip_addr "10.2.0.2") ~dst:(sip_addr "10.1.0.2") ok_200;
  feed ~src:(sip_addr "10.1.0.10") ~dst:(sip_addr "10.2.0.10") ack;
  (* Alice's media flows toward Bob. *)
  for i = 1 to 5 do
    feed
      ~src:(Dsim.Addr.v "10.1.0.10" 16384)
      ~dst:(Dsim.Addr.v "10.2.0.10" 20000)
      (rtp ~seq:i ~ts:(160 * i))
  done;
  let call =
    Option.get (Vids.Fact_base.find_call (Vids.Engine.fact_base engine) "quickstart-call")
  in
  Format.printf "  SIP machine state: %s@." (Efsm.Machine.state call.Vids.Fact_base.sip);
  Format.printf "  RTP machine state: %s@." (Efsm.Machine.state call.Vids.Fact_base.rtp);

  print_endline "== 2. A third party injects a spoofed BYE ==";
  feed ~src:(sip_addr "203.0.113.66") ~dst:(sip_addr "10.2.0.10") spoofed_bye;
  Format.printf "  SIP machine state: %s (teardown begun)@."
    (Efsm.Machine.state call.Vids.Fact_base.sip);

  print_endline "== 3. Grace timer T elapses; Alice is still talking ==";
  Dsim.Scheduler.run_until sched (Dsim.Time.of_sec 1.0);
  feed
    ~src:(Dsim.Addr.v "10.1.0.10" 16384)
    ~dst:(Dsim.Addr.v "10.2.0.10" 20000)
    (rtp ~seq:10 ~ts:1600);

  let c = Vids.Engine.counters engine in
  Format.printf "== Summary: %d SIP + %d RTP packets analyzed, %d alert(s) ==@."
    c.Vids.Engine.sip_packets c.Vids.Engine.rtp_packets c.Vids.Engine.alerts_raised;
  let stats = Vids.Engine.memory_stats engine in
  Format.printf "   per-call state: %d bytes modeled (paper: ~490), %d measured@."
    stats.Vids.Fact_base.modeled_bytes stats.Vids.Fact_base.measured_bytes
