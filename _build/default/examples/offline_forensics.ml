(* Offline forensics: capture the traffic crossing the sensor to a trace
   file (vIDS disabled — a plain packet recorder, as one would run tcpdump
   at the tap), then replay the file through the full analysis pipeline
   afterwards.  Timer-based patterns work identically offline because
   replay reconstructs virtual time from capture timestamps.

   Run with: dune exec examples/offline_forensics.exe *)

module T = Voip.Testbed

let sec = Dsim.Time.of_sec

let () =
  (* 1. Record: a clean call plus two attacks, no IDS running. *)
  let tb = T.make ~seed:90210 ~n_ua:4 ~vids:T.Off () in
  let recorder = Vids.Trace.recorder () in
  Dsim.Network.set_tap tb.T.vids_node (Some (Vids.Trace.tap recorder tb.T.sched));
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  let ua_a n = List.nth tb.T.uas_a n and ua_b n = List.nth tb.T.uas_b n in
  ignore
    (Dsim.Scheduler.schedule_at tb.T.sched (sec 1.0) (fun () ->
         Voip.Ua.call (ua_a 3) ~callee:(Voip.Ua.aor (ua_b 3)) ~duration:(sec 20.0)));
  Attack.Scenarios.spoofed_bye_call atk ~caller:(ua_a 0) ~callee:(ua_b 0) ~at:(sec 5.0);
  Attack.Scenarios.invite_flood atk ~target:(Voip.Ua.aor (ua_b 1)) ~via_proxy:true ~count:20
    ~interval:(Dsim.Time.of_ms 40.0) ~at:(sec 30.0);
  T.run_until tb (sec 60.0);

  let records = Vids.Trace.records recorder in
  let path = Filename.temp_file "vids-forensics" ".trace" in
  let oc = open_out path in
  Vids.Trace.save oc records;
  close_out oc;
  Format.printf "recorded %d packets to %s@." (List.length records) path;

  (* 2. Analyze: load the file back and run the engine over it. *)
  let ic = open_in path in
  let loaded = Result.get_ok (Vids.Trace.load ic) in
  close_in ic;
  Format.printf "@.replaying offline...@.@.";
  let engine = Vids.Trace.replay loaded in
  Vids.Report.full Format.std_formatter engine;
  Sys.remove path
