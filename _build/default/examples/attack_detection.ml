(* Launches every attack of the paper's threat model (§3) against the
   testbed and prints the detection report — the qualitative content of
   §7.5 — together with what the two baseline detectors (a Snort-like
   stateless matcher and a SCIDIVE-like stateful rule engine) see of the
   same traffic.

   Run with: dune exec examples/attack_detection.exe *)

module T = Voip.Testbed

let sec = Dsim.Time.of_sec

let () =
  let tb = T.make ~seed:31337 ~vids:T.Monitor () in
  let engine = T.engine_exn tb in

  (* Baselines tap the same vantage point. *)
  let snort = Baseline.Snort_like.create Baseline.Snort_like.default_rules in
  let scidive = Baseline.Scidive_like.create tb.T.sched () in
  let scidive_alerts = ref [] in
  Dsim.Network.set_tap tb.T.vids_node
    (Some
       (fun packet ->
         Vids.Engine.tap engine packet;
         ignore (Baseline.Snort_like.process snort packet);
         scidive_alerts := Baseline.Scidive_like.process scidive packet @ !scidive_alerts));

  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  let ua_a n = List.nth tb.T.uas_a n and ua_b n = List.nth tb.T.uas_b n in

  (* Clean background call, then one of each attack. *)
  ignore
    (Dsim.Scheduler.schedule_at tb.T.sched (sec 1.0) (fun () ->
         Voip.Ua.call (ua_a 9) ~callee:(Voip.Ua.aor (ua_b 9)) ~duration:(sec 30.0)));
  Attack.Scenarios.spoofed_bye_call atk ~caller:(ua_a 0) ~callee:(ua_b 0) ~at:(sec 5.0);
  Attack.Scenarios.cancel_dos_call atk ~caller:(ua_a 1) ~callee:(ua_b 1) ~at:(sec 30.0);
  Attack.Scenarios.hijack_call atk ~caller:(ua_a 2) ~callee:(ua_b 2) ~at:(sec 50.0);
  Attack.Scenarios.media_spam_call atk ~caller:(ua_a 3) ~callee:(ua_b 3) ~at:(sec 70.0);
  Attack.Scenarios.billing_fraud_call atk ~caller:(ua_a 4) ~callee:(ua_b 4) ~at:(sec 90.0);
  Attack.Scenarios.invite_flood atk ~target:(Voip.Ua.aor (ua_b 5)) ~via_proxy:true ~count:30
    ~interval:(Dsim.Time.of_ms 50.0) ~at:(sec 110.0);
  Attack.Scenarios.rtp_flood atk
    ~target:(Dsim.Addr.v (T.ua_b_host tb 6) 16500)
    ~rate_pps:400 ~duration:(sec 2.0) ~at:(sec 115.0);
  Attack.Scenarios.drdos atk ~victim_host:(T.ua_b_host tb 7) ~reflectors:20 ~responses:60
    ~at:(sec 120.0);
  T.run_until tb (sec 200.0);

  print_endline "Attack detection report (paper §7.5)";
  print_endline "------------------------------------";
  List.iter (fun a -> Format.printf "%a@." Vids.Alert.pp a) (Vids.Engine.alerts engine);
  let c = Vids.Engine.counters engine in
  Format.printf
    "@.vIDS: %d distinct alerts (%d duplicate notifications suppressed), %d anomalies@."
    c.Vids.Engine.alerts_raised c.Vids.Engine.alerts_suppressed c.Vids.Engine.anomalies;
  Format.printf "Snort-like stateless baseline: %d alerts on the same traffic@."
    (Baseline.Snort_like.alerts_total snort);
  Format.printf "SCIDIVE-like stateful baseline: %d alerts (its rules cover BYE/CANCEL only)@."
    (Baseline.Scidive_like.alerts_total scidive);
  List.iter (fun a -> Format.printf "  scidive: %a@." Vids.Alert.pp a) !scidive_alerts
