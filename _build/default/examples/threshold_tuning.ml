(* The paper's "ongoing work" (§7.5): how the detection timers trade
   detection latency against false alarms.  Sweeps the BYE grace timer T
   and the INVITE-flood window/threshold, reporting detection latency and
   false-alarm incidence under clean traffic with in-flight RTP and
   retransmission noise.

   Run with: dune exec examples/threshold_tuning.exe *)

module T = Voip.Testbed

let sec = Dsim.Time.of_sec

(* One spoofed-BYE attack; returns (detected, latency_s, false_alarms). *)
let bye_experiment ~grace_ms =
  let config =
    { Vids.Config.default with Vids.Config.bye_inflight_timer = Dsim.Time.of_ms grace_ms }
  in
  let tb = T.make ~seed:77 ~n_ua:4 ~vids:T.Monitor ~config () in
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  (* A clean call torn down by the CALLEE: the caller's in-flight media
     keeps crossing the sensor for a round trip after the BYE does, which
     is exactly the false-alarm window the paper's timer T must cover. *)
  ignore
    (Dsim.Scheduler.schedule_at tb.T.sched (sec 1.0) (fun () ->
         Voip.Ua.call (List.nth tb.T.uas_a 2)
           ~callee:(Voip.Ua.aor (List.nth tb.T.uas_b 2))
           ~duration:(sec 30.0)));
  ignore
    (Dsim.Scheduler.schedule_at tb.T.sched (sec 10.0) (fun () ->
         Voip.Ua.hangup_all (List.nth tb.T.uas_b 2)));
  let attack_at = sec 5.0 in
  Attack.Scenarios.spoofed_bye_call atk ~caller:(List.hd tb.T.uas_a)
    ~callee:(List.hd tb.T.uas_b) ~at:attack_at;
  T.run_until tb (sec 60.0);
  let engine = T.engine_exn tb in
  (* The attacked call originates at a1 (10.1.0.10); the clean call at a3.
     Call-IDs embed the caller host, which separates true detections from
     false alarms on the honest teardown. *)
  let ends_with ~suffix s =
    String.length s >= String.length suffix
    && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix
  in
  let attack_call a = ends_with ~suffix:"@10.1.0.10" a.Vids.Alert.subject in
  let bye_alerts = Vids.Engine.alerts_of_kind engine Vids.Alert.Bye_dos in
  let true_alerts, false_alarms = List.partition attack_call bye_alerts in
  match true_alerts with
  | [] -> (false, nan, List.length false_alarms)
  | alert :: _ ->
      (* Latency from the BYE injection (attack start + settle used by the
         scenario = 4 s after call start). *)
      let bye_time = Dsim.Time.add attack_at (sec 4.0) in
      ( true,
        Dsim.Time.to_sec (Dsim.Time.sub alert.Vids.Alert.at bye_time),
        List.length false_alarms )

(* Flood threshold sweep: a legitimate burst of [burst] calls inside one
   window vs a real flood of 20 INVITEs. *)
let flood_experiment ~threshold =
  let config =
    { Vids.Config.default with Vids.Config.invite_flood_threshold = threshold }
  in
  (* Legitimate burst: 4 calls to the same phone within a second. *)
  let tb = T.make ~seed:78 ~n_ua:4 ~vids:T.Monitor ~config () in
  let callee = List.hd tb.T.uas_b in
  List.iteri
    (fun i caller ->
      ignore
        (Dsim.Scheduler.schedule_at tb.T.sched
           (Dsim.Time.add (sec 2.0) (Dsim.Time.of_ms (float_of_int i *. 150.0)))
           (fun () -> Voip.Ua.call caller ~callee:(Voip.Ua.aor callee) ~duration:(sec 5.0))))
    tb.T.uas_a;
  T.run_until tb (sec 30.0);
  let false_alarm =
    Vids.Engine.alerts_of_kind (T.engine_exn tb) Vids.Alert.Invite_flood <> []
  in
  (* Real flood. *)
  let tb2 = T.make ~seed:79 ~n_ua:4 ~vids:T.Monitor ~config () in
  let atk = Attack.Scenarios.create tb2 ~host:"203.0.113.66" in
  Attack.Scenarios.invite_flood atk ~target:(Voip.Ua.aor (List.hd tb2.T.uas_b))
    ~via_proxy:true ~count:20 ~interval:(Dsim.Time.of_ms 40.0) ~at:(sec 2.0);
  T.run_until tb2 (sec 20.0);
  let detected =
    match Vids.Engine.alerts_of_kind (T.engine_exn tb2) Vids.Alert.Invite_flood with
    | [] -> None
    | alert :: _ -> Some (Dsim.Time.to_sec (Dsim.Time.sub alert.Vids.Alert.at (sec 2.0)))
  in
  (false_alarm, detected)

let () =
  print_endline "Sweep 1: BYE DoS grace timer T (paper: 'setting T to one RTT should be";
  print_endline "long enough to receive all in-flight RTP packets')";
  Format.printf "%12s %10s %12s %s@." "T (ms)" "detected" "latency (s)" "false alarms";
  List.iter
    (fun grace_ms ->
      let detected, latency, noise = bye_experiment ~grace_ms in
      Format.printf "%12.0f %10b %12.3f %d@." grace_ms detected latency noise)
    [ 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0; 2000.0 ];
  print_endline "";
  print_endline "Sweep 2: INVITE flood threshold N (window T1 = 1 s)";
  Format.printf "%12s %22s %s@." "N" "false alarm on burst?" "flood detection latency (s)";
  List.iter
    (fun threshold ->
      let false_alarm, detected = flood_experiment ~threshold in
      match detected with
      | Some latency -> Format.printf "%12d %22b %.3f@." threshold false_alarm latency
      | None -> Format.printf "%12d %22b (missed)@." threshold false_alarm)
    [ 2; 4; 6; 10; 15; 25 ]
