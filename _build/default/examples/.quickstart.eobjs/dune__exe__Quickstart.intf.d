examples/quickstart.mli:
