examples/attack_detection.ml: Attack Baseline Dsim Format List Vids Voip
