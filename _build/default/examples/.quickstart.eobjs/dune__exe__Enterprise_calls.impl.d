examples/enterprise_calls.ml: Dsim Format Vids Voip
