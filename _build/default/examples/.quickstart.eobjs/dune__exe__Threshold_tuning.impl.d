examples/threshold_tuning.ml: Attack Dsim Format List String Vids Voip
