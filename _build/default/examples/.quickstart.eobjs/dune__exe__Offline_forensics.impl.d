examples/offline_forensics.ml: Attack Dsim Filename Format List Result Sys Vids Voip
