examples/quickstart.ml: Dsim Efsm Format Int32 Option Rtp String Vids
