examples/enterprise_calls.mli:
