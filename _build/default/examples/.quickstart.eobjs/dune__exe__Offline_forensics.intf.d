examples/offline_forensics.mli:
