(* vids-cli: drive the simulated enterprise testbed and the intrusion
   detection system from the command line.

   Subcommands:
     simulate   run the Figure-7 workload and print performance metrics
     detect     run attack scenarios and print the alert log
     run        live-ingestion daemon over pcap files and/or a UDP socket
     profile    per-stage wall-time/allocation breakdown on a canned workload
     recover    rebuild a crashed engine from checkpoint + journal + trace
     rules      print the enforcement rules stored in a checkpoint
     parse      parse a SIP message from a file and dump its structure
     export-fsm print the Graphviz rendering of a protocol/attack machine *)

let sec = Dsim.Time.of_sec

module T = Voip.Testbed

(* ------------------------------------------------------------------ *)
(* Exit codes                                                          *)
(* ------------------------------------------------------------------ *)

(* 0 = clean, 1 = operational error, 124 = cmdliner usage error; 3 is
   reserved for "the run completed and attack alerts were raised", so
   scripts can distinguish detection from failure. *)
let exit_attacks_detected = 3

let exit_for_alerts alerts =
  if List.exists (fun (a : Vids.Alert.t) -> Vids.Alert.is_attack a.Vids.Alert.kind) alerts then
    exit_attacks_detected
  else 0

(* ------------------------------------------------------------------ *)
(* Prevention mode: --enforce / --block-ttl / --fail-closed            *)
(* ------------------------------------------------------------------ *)

let enforcement_json e =
  let module J = Obs.Json in
  let s = Enforce.Enforcer.stats e in
  let tbl = s.Enforce.Enforcer.table in
  J.obj
    [
      ("passed", J.int s.Enforce.Enforcer.passed);
      ("blocked", J.int s.Enforce.Enforcer.blocked);
      ("teardowns", J.int s.Enforce.Enforcer.teardowns);
      ("rules_active", J.int tbl.Enforce.Block_table.active);
      ("rules_installed", J.int tbl.Enforce.Block_table.installed);
      ("rules_refreshed", J.int tbl.Enforce.Block_table.refreshed);
      ("rules_expired", J.int tbl.Enforce.Block_table.expired);
      ("rules_overflowed", J.int tbl.Enforce.Block_table.overflowed);
      ("dropped", J.int tbl.Enforce.Block_table.dropped);
      ("rate_limited", J.int tbl.Enforce.Block_table.limited);
      ("lockdown", J.bool (Enforce.Block_table.lockdown (Enforce.Enforcer.table e)));
      ("digest", J.quote (Enforce.Enforcer.digest e));
      ("rules", Enforce.Enforcer.rules_json e);
    ]

let print_enforcement e =
  let s = Enforce.Enforcer.stats e in
  let tbl = s.Enforce.Enforcer.table in
  Format.printf
    "enforcement: %d blocked (%d rate-limited), %d passed, %d teardown(s); %d rule(s) active \
     (%d installed, %d expired)%s@."
    s.Enforce.Enforcer.blocked tbl.Enforce.Block_table.limited s.Enforce.Enforcer.passed
    s.Enforce.Enforcer.teardowns tbl.Enforce.Block_table.active
    tbl.Enforce.Block_table.installed tbl.Enforce.Block_table.expired
    (if Enforce.Block_table.lockdown (Enforce.Enforcer.table e) then " [LOCKDOWN]" else "")

(* ------------------------------------------------------------------ *)
(* Telemetry plumbing: --metrics-out / --trace-out / --trace-ring      *)
(* ------------------------------------------------------------------ *)

type obs_opts = {
  metrics_out : string option;
  trace_out : string option;
  trace_ring : int;
}

let telemetry_wanted o = o.metrics_out <> None || o.trace_out <> None

(* Build the registry + flight recorder pair and wire quarantine dumps to
   the trace file as they happen; the caller attaches them to an engine. *)
let make_obs o =
  if not (telemetry_wanted o) then None
  else begin
    let metrics = Obs.Metrics.create () in
    let flight = Obs.Trace.create ~capacity:o.trace_ring () in
    (match o.trace_out with
    | Some path ->
        Obs.Trace.on_dump flight (fun ~reason entries ->
            Obs.Export.append_trace ~reason ~path entries)
    | None -> ());
    Some (metrics, flight)
  end

let start_obs o engine =
  match make_obs o with
  | None -> None
  | Some (metrics, flight) ->
      Vids.Engine.set_telemetry engine ~metrics ~flight ();
      Some (metrics, flight)

(* Export destinations are announced on stderr so that --json keeps
   stdout machine-parseable. *)
let finish_obs o t =
  match t with
  | None -> ()
  | Some (metrics, flight) ->
      (match o.metrics_out with
      | Some path ->
          Obs.Export.write_metrics ~path (Obs.Metrics.snapshot metrics);
          Format.eprintf "metrics: %s@." path
      | None -> ());
      (match o.trace_out with
      | Some path ->
          Obs.Export.append_trace ~reason:"end of run" ~path (Obs.Trace.entries flight);
          Format.eprintf "trace: %s@." path
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Hot-path profiling: --profile and the [profile] subcommand          *)
(* ------------------------------------------------------------------ *)

(* The profiler shares the telemetry registry when one exists, so with
   --metrics-out the per-stage rows and GC gauges ride the same export;
   without telemetry it gets a private registry read only at report
   time. *)
let start_prof enabled obs_state =
  if not enabled then None
  else
    Some
      (Obs.Prof.create
         ?registry:(Option.map fst obs_state)
         ?flight:(Option.map snd obs_state) ())

(* Renders the breakdown: [Some json] under --json (the caller embeds it
   in its report object, keeping stdout one parseable value), a table on
   stdout otherwise. *)
let render_prof_snapshot ?records ?total_s ~json snap =
  let report = Obs.Prof.report_of_snapshot snap in
  if report = [] then None
  else if json then Some (Obs.Prof.report_json ?records ?total_s report)
  else begin
    Format.printf "%a" (Obs.Prof.pp_table ?records ?total_s) report;
    None
  end

let finish_prof ?records ?total_s ~json prof =
  match prof with
  | None -> None
  | Some p ->
      Obs.Prof.sample_gc p;
      render_prof_snapshot ?records ?total_s ~json
        (Obs.Metrics.snapshot (Obs.Prof.registry p))

(* ------------------------------------------------------------------ *)
(* Attack scheduling shared by [detect], [record] and [profile]        *)
(* ------------------------------------------------------------------ *)

let launch_attack atk tb ~at ~pair name =
  let ua_a = List.nth tb.T.uas_a pair and ua_b = List.nth tb.T.uas_b pair in
  match name with
  | "bye-dos" ->
      Attack.Scenarios.spoofed_bye_call atk ~caller:ua_a ~callee:ua_b ~at;
      true
  | "cancel-dos" ->
      Attack.Scenarios.cancel_dos_call atk ~caller:ua_a ~callee:ua_b ~at;
      true
  | "hijack" ->
      Attack.Scenarios.hijack_call atk ~caller:ua_a ~callee:ua_b ~at;
      true
  | "media-spam" ->
      Attack.Scenarios.media_spam_call atk ~caller:ua_a ~callee:ua_b ~at;
      true
  | "billing-fraud" ->
      Attack.Scenarios.billing_fraud_call atk ~caller:ua_a ~callee:ua_b ~at;
      true
  | "invite-flood" ->
      Attack.Scenarios.invite_flood atk ~target:(Voip.Ua.aor ua_b) ~via_proxy:true ~count:25
        ~interval:(Dsim.Time.of_ms 40.0) ~at;
      true
  | "rtp-flood" ->
      Attack.Scenarios.rtp_flood atk ~target:(Dsim.Addr.v (T.ua_b_host tb pair) 16500)
        ~rate_pps:400 ~duration:(sec 2.0) ~at;
      true
  | "drdos" ->
      Attack.Scenarios.drdos atk ~victim_host:(T.ua_b_host tb pair) ~reflectors:20 ~responses:60
        ~at;
      true
  | _ -> false

(* One attack every 25 s starting at t=5 s, cycling through the eight UA
   pairs — the cadence every consumer of the scenario list uses. *)
let schedule_attacks atk tb ~on_unknown names =
  List.iteri
    (fun i name ->
      let at = sec (5.0 +. (25.0 *. float_of_int i)) in
      if not (launch_attack atk tb ~at ~pair:(i mod 8) name) then on_unknown name)
    names

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let mode_of_string = function
  | "inline" -> Ok T.Inline
  | "monitor" -> Ok T.Monitor
  | "off" -> Ok T.Off
  | s -> Error (Printf.sprintf "unknown vids mode %S (inline|monitor|off)" s)

(* Resource-governance knobs shared by [simulate] and [detect]: start from
   the preset when [--governed], then apply any explicit overrides. *)
type governance = {
  governed : bool;
  max_calls : int option;
  max_detectors : int option;
  call_max_age : float option;
  sweep_interval : float option;
  degrade_high_water : int option;
  degrade_low_water : int option;
}

let apply_governance g config =
  let config = if g.governed then Vids.Config.governed config else config in
  let opt v f config = match v with None -> config | Some v -> f config v in
  config
  |> opt g.max_calls (fun c v -> { c with Vids.Config.max_calls = v })
  |> opt g.max_detectors (fun c v -> { c with Vids.Config.max_detectors = v })
  |> opt g.call_max_age (fun c v -> { c with Vids.Config.call_max_age = sec v })
  |> opt g.sweep_interval (fun c v -> { c with Vids.Config.sweep_interval = sec v })
  |> opt g.degrade_high_water (fun c v -> { c with Vids.Config.degrade_high_water = v })
  |> opt g.degrade_low_water (fun c v -> { c with Vids.Config.degrade_low_water = v })

(* Periodic checkpointing shared by [simulate], [detect] and [analyze]:
   every interval, snapshot the engine to --checkpoint-file (rotating the
   previous file to FILE.1) and append a marker to the write-ahead journal
   at FILE.journal, which also receives every alert and eviction as it
   happens.  [vids-cli recover] consumes all three files. *)
type checkpointing = { interval : float; file : string }

let start_checkpointing ?obs ck sched engine ~horizon =
  if ck.interval <= 0.0 then None
  else begin
    let registry = Option.map fst obs in
    let flight = Option.map snd obs in
    let ck_hist =
      Option.map
        (fun m ->
          Obs.Metrics.histogram m "vids_checkpoint_seconds"
            ~help:"Wall-clock duration of one checkpoint (capture + save + journal marker)")
        registry
    in
    let journal_path = ck.file ^ ".journal" in
    let writer = Vids.Journal.create_writer ?registry journal_path in
    Vids.Journal.attach writer engine;
    let seq = ref 0 in
    let period = sec ck.interval in
    let rec arm at =
      if Dsim.Time.( < ) at horizon then
        ignore
          (Dsim.Scheduler.schedule_at sched at (fun () ->
               incr seq;
               let now = Dsim.Scheduler.now sched in
               let t0 = match ck_hist with None -> 0.0 | Some _ -> Unix.gettimeofday () in
               Vids.Snapshot.save ~path:ck.file
                 (Vids.Snapshot.capture ~seq:!seq ~at:now engine);
               Vids.Journal.append writer (Vids.Journal.Checkpoint { at = now; seq = !seq });
               Option.iter
                 (fun h -> Obs.Metrics.observe h (Unix.gettimeofday () -. t0))
                 ck_hist;
               Option.iter
                 (fun fl ->
                   Obs.Trace.record fl ~at:now (Obs.Trace.Checkpoint { seq = !seq }))
                 flight;
               arm (Dsim.Time.add at period)))
    in
    arm period;
    Some (writer, ck.file, journal_path)
  end

let finish_checkpointing = function
  | None -> ()
  | Some (writer, snapshot_path, journal_path) ->
      Vids.Journal.close_writer writer;
      (* stderr, like the telemetry export announcements, so --json keeps
         stdout machine-parseable. *)
      Format.eprintf "checkpoints: %s (journal %s)@." snapshot_path journal_path

(* Sharded analysis shared by [simulate], [detect] and [analyze]: with
   --shards N > 1 the engine is replaced by [Shard_engine] worker domains
   fed from a tap on the vIDS node (monitor semantics — a sharded engine
   cannot sit inline), checkpointing per shard under --checkpoint-file. *)
let shard_checkpoint checkpointing =
  if checkpointing.interval <= 0.0 then None
  else
    Some
      { Shard.Shard_engine.prefix = checkpointing.file; every = sec checkpointing.interval }

let start_sharded ?(obs = { metrics_out = None; trace_out = None; trace_ring = 256 })
    ?(profile = false) ~shards ~config ~checkpointing ~horizon tb =
  let eng =
    Shard.Shard_engine.create ~config ?checkpoint:(shard_checkpoint checkpointing)
      ~telemetry:(telemetry_wanted obs) ~profile ~trace_ring:obs.trace_ring ~horizon ~shards ()
  in
  Dsim.Network.set_tap tb.T.vids_node
    (Some
       (fun packet ->
         Shard.Shard_engine.feed eng
           (Vids.Trace.record_of_packet ~at:(Dsim.Scheduler.now tb.T.sched) packet)));
  eng

(* One merged export for the whole sharded run: worker registries were
   folded by the coordinator, worker flight tails are appended per shard. *)
let export_sharded_obs obs (outcome : Shard.Shard_engine.outcome) =
  (match (obs.metrics_out, outcome.Shard.Shard_engine.metrics) with
  | Some path, Some snap ->
      Obs.Export.write_metrics ~path snap;
      Format.eprintf "metrics: %s (merged across %d shards)@." path
        outcome.Shard.Shard_engine.shards
  | _ -> ());
  match obs.trace_out with
  | Some path ->
      Array.iteri
        (fun i entries ->
          Obs.Export.append_trace ~reason:(Printf.sprintf "shard %d end of run" i) ~path entries)
        outcome.Shard.Shard_engine.flights;
      Format.eprintf "trace: %s@." path
  | None -> ()

let finish_sharded ?obs ?(print_report = true) ~checkpointing eng =
  let outcome = Shard.Shard_engine.finish eng in
  if print_report then begin
    Shard.Shard_engine.report Format.std_formatter outcome;
    match shard_checkpoint checkpointing with
    | None -> ()
    | Some ck ->
        Format.printf "checkpoints: %s.shard0..%d (journals ….journal)@."
          ck.Shard.Shard_engine.prefix
          (outcome.Shard.Shard_engine.shards - 1)
  end;
  Option.iter (fun o -> export_sharded_obs o outcome) obs;
  outcome

(* The sharded counterpart of [Vids.Report.json]: merged counters and the
   merged alert log, plus the per-shard load table.  [profile], when the
   run was profiled, is the rendered per-stage ranking. *)
let shard_outcome_json ?profile (o : Shard.Shard_engine.outcome) =
  let module J = Obs.Json in
  let c = o.Shard.Shard_engine.counters in
  let counters =
    J.obj
      [
        ("sip_packets", J.int c.Vids.Engine.sip_packets);
        ("rtp_packets", J.int c.Vids.Engine.rtp_packets);
        ("rtcp_packets", J.int c.Vids.Engine.rtcp_packets);
        ("other_packets", J.int c.Vids.Engine.other_packets);
        ("malformed_packets", J.int c.Vids.Engine.malformed_packets);
        ("orphan_requests", J.int c.Vids.Engine.orphan_requests);
        ("orphan_responses", J.int c.Vids.Engine.orphan_responses);
        ("alerts_raised", J.int c.Vids.Engine.alerts_raised);
        ("alerts_suppressed", J.int c.Vids.Engine.alerts_suppressed);
        ("anomalies", J.int c.Vids.Engine.anomalies);
        ("faults", J.int c.Vids.Engine.faults);
        ("rtp_shed", J.int c.Vids.Engine.rtp_shed);
        ("backpressure_stalls", J.int c.Vids.Engine.backpressure_stalls);
      ]
  in
  let alert_json (a : Vids.Alert.t) =
    J.obj
      [
        ("kind", J.quote (Vids.Alert.kind_to_string a.Vids.Alert.kind));
        ("severity", J.quote (Vids.Alert.severity_to_string a.Vids.Alert.severity));
        ("at_us", J.int (Dsim.Time.to_us a.Vids.Alert.at));
        ("subject", J.quote a.Vids.Alert.subject);
        ("detail", J.quote a.Vids.Alert.detail);
      ]
  in
  let shard_json i (s : Shard.Shard_engine.shard_stat) =
    J.obj
      [
        ("shard", J.int i);
        ("fed", J.int s.Shard.Shard_engine.fed);
        ("stalls", J.int s.Shard.Shard_engine.stalls);
        ("alerts_raised", J.int s.Shard.Shard_engine.counters.Vids.Engine.alerts_raised);
        ("active_calls", J.int s.Shard.Shard_engine.memory.Vids.Fact_base.active_calls);
      ]
  in
  let alerts = o.Shard.Shard_engine.alerts in
  J.obj
    ([
       ("shards", J.int o.Shard.Shard_engine.shards);
       ("counters", counters);
       ( "attacks_detected",
         J.bool
           (List.exists (fun (a : Vids.Alert.t) -> Vids.Alert.is_attack a.Vids.Alert.kind) alerts)
       );
       ("alerts", J.arr (List.map alert_json alerts));
       ( "per_shard",
         J.arr (Array.to_list (Array.mapi shard_json o.Shard.Shard_engine.per_shard)) );
     ]
    @ match profile with None -> [] | Some j -> [ ("profile", j) ])

(* --spec FILE: load [.vspec] machine overrides under [config].  Front-end
   diagnostics are rendered (with caret snippets) to stderr; [Error]
   means "already reported, exit 1". *)
let load_spec_overrides config paths =
  if paths = [] then Ok []
  else
    match Vids.Spec_load.load_files config paths with
    | Ok overrides ->
        List.iter
          (fun (name, _) -> Format.eprintf "spec override: machine %s@." name)
          overrides;
        Ok overrides
    | Error msg ->
        prerr_endline msg;
        Error ()

let reject_spec_with_shards specs shards =
  if specs <> [] && shards > 1 then begin
    Format.eprintf
      "--spec needs the sequential engine (overrides are per-engine); drop --shards@.";
    exit 1
  end

let governance_summary engine =
  let stats = Vids.Engine.memory_stats engine in
  let c = Vids.Engine.counters engine in
  if
    stats.Vids.Fact_base.calls_evicted + stats.Vids.Fact_base.detectors_evicted
    + stats.Vids.Fact_base.calls_swept + c.Vids.Engine.faults + c.Vids.Engine.rtp_shed
    > 0
  then
    Format.printf
      "governance: %d calls evicted, %d detectors evicted, %d swept, %d faults contained, %d RTP shed@."
      stats.Vids.Fact_base.calls_evicted stats.Vids.Fact_base.detectors_evicted
      stats.Vids.Fact_base.calls_swept c.Vids.Engine.faults c.Vids.Engine.rtp_shed

let simulate seed n_ua mode_str minutes mean_gap mean_talk governance checkpointing shards obs
    specs =
  match mode_of_string mode_str with
  | Error e ->
      prerr_endline e;
      1
  | Ok mode -> (
      let config = apply_governance governance Vids.Config.default in
      let sharded = shards > 1 && mode <> T.Off in
      reject_spec_with_shards specs shards;
      match load_spec_overrides config specs with
      | Error () -> 1
      | Ok overrides ->
      let tb =
        T.make ~seed ~n_ua ~vids:(if sharded then T.Off else mode) ~config ~overrides ()
      in
      let horizon = sec (60.0 *. minutes) in
      let shard_eng =
        if sharded then Some (start_sharded ~obs ~shards ~config ~checkpointing ~horizon tb)
        else None
      in
      let obs_state =
        match tb.T.engine with Some engine -> start_obs obs engine | None -> None
      in
      let ck =
        match tb.T.engine with
        | Some engine ->
            start_checkpointing ?obs:obs_state checkpointing tb.T.sched engine ~horizon
        | None -> None
      in
      let profile =
        {
          Voip.Call_generator.mean_interarrival = sec mean_gap;
          mean_duration = sec mean_talk;
          min_duration = sec 5.0;
        }
      in
      T.run_workload tb ~profile ~duration:horizon ();
      finish_checkpointing ck;
      let m = tb.T.metrics in
      Format.printf "workload: %d calls attempted, %d established, %d completed, %d failed@."
        (Voip.Metrics.attempted m) (Voip.Metrics.established m) (Voip.Metrics.completed m)
        (Voip.Metrics.failed m);
      Format.printf "call setup delay: %a@." Dsim.Stat.Summary.pp (Voip.Metrics.setup_all m);
      let rtp = Dsim.Stat.Series.summary (Voip.Metrics.rtp_delay m) in
      Format.printf "rtp one-way delay: mean %.2f ms (n=%d)@."
        (1000.0 *. Dsim.Stat.Summary.mean rtp)
        (Dsim.Stat.Summary.count rtp);
      Format.printf "rtp jitter: mean %.3g s@."
        (Dsim.Stat.Summary.mean (Voip.Metrics.jitter_summary m));
      (match tb.T.engine with
      | None -> ()
      | Some engine ->
          let c = Vids.Engine.counters engine in
          let stats = Vids.Engine.memory_stats engine in
          Format.printf
            "vIDS: %d sip, %d rtp, %d alerts, %d anomalies; peak %d calls (%d B modeled)@."
            c.Vids.Engine.sip_packets c.Vids.Engine.rtp_packets c.Vids.Engine.alerts_raised
            c.Vids.Engine.anomalies stats.Vids.Fact_base.peak_calls
            (stats.Vids.Fact_base.peak_calls
            * (Vids.Config.default.Vids.Config.sip_state_bytes
              + Vids.Config.default.Vids.Config.rtp_state_bytes));
          governance_summary engine;
          List.iter (fun a -> Format.printf "  %a@." Vids.Alert.pp a) (Vids.Engine.alerts engine));
      finish_obs obs obs_state;
      (match shard_eng with
      | None -> ()
      | Some eng -> ignore (finish_sharded ~obs ~checkpointing eng));
      0)

(* ------------------------------------------------------------------ *)
(* detect                                                              *)
(* ------------------------------------------------------------------ *)

let all_attacks = [ "bye-dos"; "cancel-dos"; "hijack"; "media-spam"; "billing-fraud";
                    "invite-flood"; "rtp-flood"; "drdos" ]

let detect seed attacks governance checkpointing shards obs enforce_policy profile json specs =
  let attacks = if attacks = [] then all_attacks else attacks in
  let config = apply_governance governance Vids.Config.default in
  let sharded = shards > 1 in
  if sharded && enforce_policy <> None then begin
    Format.eprintf
      "--enforce needs the sequential engine (the gate sits on one tap); drop --shards@.";
    exit 1
  end;
  reject_spec_with_shards specs shards;
  match load_spec_overrides config specs with
  | Error () -> 1
  | Ok overrides ->
  let tb =
    T.make ~seed ~vids:(if sharded then T.Off else T.Monitor) ~config ~overrides ()
  in
  let horizon = sec (40.0 +. (25.0 *. float_of_int (List.length attacks))) in
  let shard_eng =
    if sharded then Some (start_sharded ~obs ~profile ~shards ~config ~checkpointing ~horizon tb)
    else None
  in
  let obs_state = if sharded then None else start_obs obs (T.engine_exn tb) in
  let prof = if sharded then None else start_prof profile obs_state in
  if not sharded then Vids.Engine.set_profiler (T.engine_exn tb) prof;
  let ck =
    if sharded then None
    else start_checkpointing ?obs:obs_state checkpointing tb.T.sched (T.engine_exn tb) ~horizon
  in
  (* Prevention mode: re-point the sensor tap at the enforcement gate so
     blocked packets never reach the engine. *)
  let enforcer =
    Option.map
      (fun policy ->
        let e = Enforce.Enforcer.create ~policy tb.T.sched (T.engine_exn tb) in
        Dsim.Network.set_tap tb.T.vids_node
          (Some
             (fun pkt ->
               match prof with
               | None -> ignore (Enforce.Enforcer.ingest e pkt)
               | Some p ->
                   Obs.Prof.enter p Obs.Prof.Enforce_gate;
                   ignore (Enforce.Enforcer.ingest e pkt);
                   Obs.Prof.exit p Obs.Prof.Enforce_gate));
        e)
      enforce_policy
  in
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  let unknown = ref [] in
  schedule_attacks atk tb ~on_unknown:(fun name -> unknown := name :: !unknown) attacks;
  match !unknown with
  | _ :: _ ->
      Format.eprintf "unknown attacks: %s (choose from %s)@."
        (String.concat ", " !unknown) (String.concat ", " all_attacks);
      1
  | [] -> (
      (* Wrapping the whole simulation in a Drive span makes the profile
         shares add up against end-to-end time: everything not inside an
         engine/gate span is Drive self time. *)
      let t0 = Unix.gettimeofday () in
      Option.iter (fun p -> Obs.Prof.enter p Obs.Prof.Drive) prof;
      T.run_until tb horizon;
      Option.iter (fun p -> Obs.Prof.exit p Obs.Prof.Drive) prof;
      let total_s = Unix.gettimeofday () -. t0 in
      finish_checkpointing ck;
      match shard_eng with
      | Some eng ->
          let outcome = finish_sharded ~obs ~print_report:(not json) ~checkpointing eng in
          let prof_json =
            if not profile then None
            else
              Option.bind outcome.Shard.Shard_engine.metrics (fun snap ->
                  render_prof_snapshot ~json snap)
          in
          if json then print_endline (shard_outcome_json ?profile:prof_json outcome)
          else begin
            let c = outcome.Shard.Shard_engine.counters in
            Format.printf "%d distinct alert(s); %d duplicates suppressed@."
              c.Vids.Engine.alerts_raised c.Vids.Engine.alerts_suppressed
          end;
          exit_for_alerts outcome.Shard.Shard_engine.alerts
      | None ->
          let engine = T.engine_exn tb in
          let c = Vids.Engine.counters engine in
          let records =
            c.Vids.Engine.sip_packets + c.Vids.Engine.rtp_packets + c.Vids.Engine.rtcp_packets
            + c.Vids.Engine.other_packets + c.Vids.Engine.malformed_packets
          in
          if json then
            let prof_json = finish_prof ~records ~total_s ~json:true prof in
            print_endline
              (match (enforcer, prof_json) with
              | None, None -> Vids.Report.json engine
              | _ ->
                  Obs.Json.obj
                    ([ ("report", Vids.Report.json engine) ]
                    @ (match enforcer with
                      | None -> []
                      | Some e -> [ ("enforcement", enforcement_json e) ])
                    @ match prof_json with None -> [] | Some j -> [ ("profile", j) ]))
          else begin
            List.iter
              (fun a -> Format.printf "%a@." Vids.Alert.pp a)
              (Vids.Engine.alerts engine);
            Format.printf "%d distinct alert(s); %d duplicates suppressed@."
              c.Vids.Engine.alerts_raised c.Vids.Engine.alerts_suppressed;
            governance_summary engine;
            Option.iter
              (fun e ->
                print_enforcement e;
                print_string (Enforce.Enforcer.rules_text e))
              enforcer;
            ignore (finish_prof ~records ~total_s ~json:false prof)
          end;
          finish_obs obs obs_state;
          exit_for_alerts (Vids.Engine.alerts engine))

(* ------------------------------------------------------------------ *)
(* record / analyze: offline trace workflow                            *)
(* ------------------------------------------------------------------ *)

let record seed attacks workload no_attacks path =
  let attacks =
    if no_attacks then [] else if attacks = [] then all_attacks else attacks
  in
  let tb = T.make ~seed ~vids:T.Off () in
  let recorder = Vids.Trace.recorder () in
  Dsim.Network.set_tap tb.T.vids_node (Some (Vids.Trace.tap recorder tb.T.sched));
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  schedule_attacks atk tb
    ~on_unknown:(fun other -> Format.eprintf "skipping unknown attack %S@." other)
    attacks;
  let attack_horizon =
    if attacks = [] then 0.0 else 40.0 +. (25.0 *. float_of_int (List.length attacks))
  in
  let horizon = sec (Float.max attack_horizon (60.0 *. workload)) in
  if workload > 0.0 then begin
    (* Benign background calls interleaved with (or instead of) the
       attacks — the fixture generator for daemon smoke tests. *)
    (* Sparse-ish calls: the fixture this generates is committed to the
       repo, so favor small captures over realistic call volume. *)
    let profile =
      {
        Voip.Call_generator.mean_interarrival = sec 40.0;
        mean_duration = sec 5.0;
        min_duration = sec 2.0;
      }
    in
    T.run_workload tb ~profile ~duration:horizon ()
  end
  else T.run_until tb horizon;
  let records = Vids.Trace.records recorder in
  if Filename.check_suffix path ".pcap" then begin
    Ingest.Pcap.write_file path records;
    Format.printf "wrote %d packets to %s (pcap)@." (List.length records) path
  end
  else begin
    let oc = open_out path in
    Vids.Trace.save oc records;
    close_out oc;
    Format.printf "wrote %d packets to %s@." (List.length records) path
  end;
  0

(* ------------------------------------------------------------------ *)
(* run: the live-ingestion daemon                                      *)
(* ------------------------------------------------------------------ *)

let stop_reason_string = function
  | Ingest.Daemon.Eof -> "eof"
  | Ingest.Daemon.Signalled -> "signalled"
  | Ingest.Daemon.Deadline -> "deadline"
  | Ingest.Daemon.Source_dead -> "source-dead"
  | Ingest.Daemon.Killed -> "killed"

let parse_listen spec =
  match String.rindex_opt spec ':' with
  | None -> (
      match int_of_string_opt spec with
      | Some port when port >= 0 -> Ok ("127.0.0.1", port)
      | _ -> Error (Printf.sprintf "bad --listen %S (HOST:PORT or PORT)" spec))
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some port when port >= 0 && host <> "" -> Ok (host, port)
      | _ -> Error (Printf.sprintf "bad --listen %S (HOST:PORT or PORT)" spec))

let ingest_report_json ?profile (r : Ingest.Daemon.report) =
  let module J = Obs.Json in
  let q = r.Ingest.Daemon.queue in
  let quar = r.Ingest.Daemon.quarantine in
  J.obj
    ([
       ( "ingest",
         J.obj
           [
             ("stop_reason", J.quote (stop_reason_string r.Ingest.Daemon.stop_reason));
             ("dispatched", J.int r.Ingest.Daemon.dispatched);
             ("parse_errors", J.int r.Ingest.Daemon.parse_errors);
             ("checkpoints", J.int r.Ingest.Daemon.checkpoints);
             ("queue_capacity", J.int q.Ingest.Shed_queue.capacity);
             ("queue_high_water", J.int q.Ingest.Shed_queue.high_water);
             ("queue_enqueued", J.int q.Ingest.Shed_queue.enqueued);
             ("queue_shed_media", J.int q.Ingest.Shed_queue.shed_media);
             ("queue_shed_oldest", J.int q.Ingest.Shed_queue.shed_oldest);
             ("queue_peak_depth", J.int q.Ingest.Shed_queue.peak_depth);
             ("quarantine_errors", J.int quar.Ingest.Quarantine.errors);
             ("quarantined_sources", J.int quar.Ingest.Quarantine.quarantines);
             ("quarantine_dropped", J.int quar.Ingest.Quarantine.dropped);
             ("quarantine_active", J.int quar.Ingest.Quarantine.active);
             ("dispatch_p99_us",
              J.float (1e6 *. Dsim.Stat.Quantiles.p99 r.Ingest.Daemon.dispatch));
             ("horizon_us", J.int (Dsim.Time.to_us r.Ingest.Daemon.horizon));
           ] );
       ("report", Vids.Report.json r.Ingest.Daemon.engine);
     ]
    @ (match r.Ingest.Daemon.enforcer with
      | None -> []
      | Some e -> [ ("enforcement", enforcement_json e) ])
    @ match profile with None -> [] | Some j -> [ ("profile", j) ])

let print_ingest_report (r : Ingest.Daemon.report) =
  let q = r.Ingest.Daemon.queue in
  let quar = r.Ingest.Daemon.quarantine in
  Format.printf "ingestion stopped: %s at %a@."
    (stop_reason_string r.Ingest.Daemon.stop_reason)
    Dsim.Time.pp r.Ingest.Daemon.horizon;
  Format.printf
    "ingest: %d dispatched, %d parse errors, %d shed (%d media, %d displaced), peak queue %d@."
    r.Ingest.Daemon.dispatched r.Ingest.Daemon.parse_errors
    (q.Ingest.Shed_queue.shed_media + q.Ingest.Shed_queue.shed_oldest)
    q.Ingest.Shed_queue.shed_media q.Ingest.Shed_queue.shed_oldest
    q.Ingest.Shed_queue.peak_depth;
  if quar.Ingest.Quarantine.errors > 0 then
    Format.printf "quarantine: %d errors charged, %d sources quarantined, %d datagrams dropped@."
      quar.Ingest.Quarantine.errors quar.Ingest.Quarantine.quarantines
      quar.Ingest.Quarantine.dropped;
  List.iter
    (fun (path, (s : Ingest.Pcap.stats)) ->
      Format.printf "pcap %s: %d frames, %d records, %d skipped%s@." path s.Ingest.Pcap.frames
        s.Ingest.Pcap.records s.Ingest.Pcap.skipped
        (if s.Ingest.Pcap.truncated_tail then " (truncated tail)" else ""))
    r.Ingest.Daemon.pcap;
  List.iter
    (fun (s : Ingest.Udp_source.stats) ->
      Format.printf "udp: %d received, %d recv errors, %d reopens%s@."
        s.Ingest.Udp_source.received s.Ingest.Udp_source.recv_errors
        s.Ingest.Udp_source.reopens
        (if s.Ingest.Udp_source.gave_up then " (gave up)" else ""))
    r.Ingest.Daemon.udp;
  if Dsim.Stat.Quantiles.count r.Ingest.Daemon.dispatch > 0 then
    Format.printf "dispatch latency: p50 %.0f us, p99 %.0f us@."
      (1e6 *. Dsim.Stat.Quantiles.p50 r.Ingest.Daemon.dispatch)
      (1e6 *. Dsim.Stat.Quantiles.p99 r.Ingest.Daemon.dispatch);
  if r.Ingest.Daemon.checkpoints > 0 then
    Format.printf "checkpoints: %d saved@." r.Ingest.Daemon.checkpoints;
  Option.iter
    (fun e ->
      print_enforcement e;
      print_string (Enforce.Enforcer.rules_text e))
    r.Ingest.Daemon.enforcer;
  Vids.Report.full Format.std_formatter r.Ingest.Daemon.engine

let daemon captures pace listen queue_cap max_runtime governance checkpointing obs record_out
    enforce_policy profile json specs =
  (* The graceful path: first signal sets the flag and the loop drains; a
     second signal while the drain runs falls back to the default
     disposition (terminate now), so a wedged drain cannot trap the
     operator. *)
  let stop = ref false in
  let arm signal =
    try
      Sys.set_signal signal
        (Sys.Signal_handle
           (fun s ->
             if !stop then exit 1
             else begin
               stop := true;
               Format.eprintf "signal %d: draining...@." s
             end))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  arm Sys.sigterm;
  arm Sys.sigint;
  let listener =
    match listen with
    | None -> Ok None
    | Some spec -> (
        match parse_listen spec with
        | Error e -> Error e
        | Ok (host, port) -> (
            match Ingest.Udp_source.listen ~host ~port () with
            | Error e -> Error e
            | Ok u ->
                Format.eprintf "listening on %s@."
                  (Dsim.Addr.to_string (Ingest.Udp_source.local_addr u));
                Ok (Some u)))
  in
  match listener with
  | Error e ->
      Format.eprintf "%s@." e;
      1
  | Ok listener -> (
      let sources =
        List.map (fun path -> Ingest.Daemon.Pcap_file { path; pace }) captures
        @ (match listener with Some u -> [ Ingest.Daemon.Udp u ] | None -> [])
      in
      if sources = [] then begin
        Format.eprintf "nothing to ingest: give capture files and/or --listen@.";
        1
      end
      else begin
        let engine_config = apply_governance governance Vids.Config.default in
        match load_spec_overrides engine_config specs with
        | Error () -> 1
        | Ok overrides ->
        let obs_state = make_obs obs in
        let metrics = Option.map fst obs_state in
        let flight = Option.map snd obs_state in
        let prof = start_prof profile obs_state in
        let config =
          {
            Ingest.Daemon.default with
            Ingest.Daemon.engine_config = Some engine_config;
            spec_overrides = overrides;
            queue_capacity = queue_cap;
            checkpoint_every_s = checkpointing.interval;
            snapshot_path =
              (if checkpointing.interval > 0.0 then Some checkpointing.file else None);
            journal_path =
              (if checkpointing.interval > 0.0 then Some (checkpointing.file ^ ".journal")
               else None);
            record_path = record_out;
            max_runtime_s = max_runtime;
            enforce = enforce_policy;
          }
        in
        match Ingest.Daemon.run ?metrics ?flight ?prof ~stop config sources with
        | Error e ->
            Format.eprintf "daemon error: %s@." e;
            1
        | Ok report ->
            let records = report.Ingest.Daemon.dispatched in
            if json then
              print_endline
                (ingest_report_json ?profile:(finish_prof ~records ~json:true prof) report)
            else begin
              print_ingest_report report;
              ignore (finish_prof ~records ~json:false prof)
            end;
            if checkpointing.interval > 0.0 then
              Format.eprintf "checkpoints: %s (journal %s)@." checkpointing.file
                (checkpointing.file ^ ".journal");
            finish_obs obs obs_state;
            (match report.Ingest.Daemon.stop_reason with
            | Ingest.Daemon.Source_dead -> 1
            | _ -> exit_for_alerts (Vids.Engine.alerts report.Ingest.Daemon.engine))
      end)

let analyze path checkpointing shards obs profile json specs =
  reject_spec_with_shards specs shards;
  let overrides =
    match load_spec_overrides Vids.Config.default specs with
    | Ok o -> o
    | Error () -> exit 1
  in
  let ic = open_in path in
  let loaded = Vids.Trace.load ic in
  close_in ic;
  match loaded with
  | Error e ->
      Format.eprintf "trace error: %s@." e;
      1
  | Ok records when shards > 1 ->
      if not json then
        Format.printf "replaying %d packets across %d shards...@." (List.length records) shards;
      let horizon =
        (* Mirror the sequential checkpointing path's bounded drain; an
           unbounded drain otherwise. *)
        if checkpointing.interval <= 0.0 then None
        else
          Some
            (Dsim.Time.add
               (List.fold_left
                  (fun acc r -> Dsim.Time.max acc r.Vids.Trace.at)
                  Dsim.Time.zero records)
               (sec 60.0))
      in
      let eng =
        Shard.Shard_engine.create ?checkpoint:(shard_checkpoint checkpointing) ?horizon
          ~telemetry:(telemetry_wanted obs) ~profile ~trace_ring:obs.trace_ring ~shards ()
      in
      List.iter (Shard.Shard_engine.feed eng)
        (List.stable_sort
           (fun (a : Vids.Trace.record) b -> Dsim.Time.compare a.at b.at)
           records);
      let outcome = finish_sharded ~obs ~print_report:(not json) ~checkpointing eng in
      let prof_json =
        if not profile then None
        else
          Option.bind outcome.Shard.Shard_engine.metrics (fun snap ->
              render_prof_snapshot ~records:(List.length records) ~json snap)
      in
      if json then print_endline (shard_outcome_json ?profile:prof_json outcome);
      exit_for_alerts outcome.Shard.Shard_engine.alerts
  | Ok records ->
      if not json then Format.printf "replaying %d packets...@." (List.length records);
      let plain =
        checkpointing.interval <= 0.0 && not (telemetry_wanted obs) && not profile
        && overrides = []
      in
      let engine, obs_state, prof, total_s =
        if plain then (Vids.Trace.replay records, None, None, 0.0)
        else begin
          (* Build the replay by hand so checkpoints, telemetry and the
             profiler ride the same clock. *)
          let sched = Dsim.Scheduler.create () in
          let engine = Vids.Engine.create ~overrides sched in
          let obs_state = start_obs obs engine in
          let prof = start_prof profile obs_state in
          Vids.Engine.set_profiler engine prof;
          let last =
            List.fold_left (fun acc r -> Dsim.Time.max acc r.Vids.Trace.at) Dsim.Time.zero
              records
          in
          let horizon = Dsim.Time.add last (sec 60.0) in
          (* Packets first: at equal instants a packet must beat a
             checkpoint, so a record at exactly the checkpoint time is
             inside the snapshot rather than lost (recovery replays only
             strictly-later records). *)
          ignore (Vids.Trace.schedule_into sched engine records);
          let ck = start_checkpointing ?obs:obs_state checkpointing sched engine ~horizon in
          let t0 = Unix.gettimeofday () in
          Option.iter (fun p -> Obs.Prof.enter p Obs.Prof.Drive) prof;
          Dsim.Scheduler.run_until sched horizon;
          Option.iter (fun p -> Obs.Prof.exit p Obs.Prof.Drive) prof;
          let total_s = Unix.gettimeofday () -. t0 in
          finish_checkpointing ck;
          (engine, obs_state, prof, total_s)
        end
      in
      if json then
        print_endline
          (match finish_prof ~records:(List.length records) ~total_s ~json:true prof with
          | None -> Vids.Report.json engine
          | Some j ->
              Obs.Json.obj [ ("report", Vids.Report.json engine); ("profile", j) ])
      else begin
        Vids.Report.full Format.std_formatter engine;
        ignore (finish_prof ~records:(List.length records) ~total_s ~json:false prof)
      end;
      finish_obs obs obs_state;
      exit_for_alerts (Vids.Engine.alerts engine)

(* ------------------------------------------------------------------ *)
(* profile: the hot-path breakdown on a canned attack workload         *)
(* ------------------------------------------------------------------ *)

(* Capture the attack suite plus benign background calls (the [record]
   fixture shape), then replay it through a fully instrumented sequential
   stack: profiler on the engine, every record through an enforcement
   gate, periodic checkpoints with journal fsyncs, and the whole drive
   loop under [Drive] spans — so the per-stage self times are disjoint
   and sum to the measured end-to-end wall time. *)
let profile_workload seed minutes attacks json obs =
  let attacks = if attacks = [] then all_attacks else attacks in
  let tb = T.make ~seed ~vids:T.Off () in
  let recorder = Vids.Trace.recorder () in
  Dsim.Network.set_tap tb.T.vids_node (Some (Vids.Trace.tap recorder tb.T.sched));
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  let unknown = ref [] in
  schedule_attacks atk tb ~on_unknown:(fun n -> unknown := n :: !unknown) attacks;
  match !unknown with
  | _ :: _ ->
      Format.eprintf "unknown attacks: %s (choose from %s)@." (String.concat ", " !unknown)
        (String.concat ", " all_attacks);
      1
  | [] ->
      let horizon =
        sec (Float.max (40.0 +. (25.0 *. float_of_int (List.length attacks))) (60.0 *. minutes))
      in
      let gen =
        {
          Voip.Call_generator.mean_interarrival = sec 30.0;
          mean_duration = sec 6.0;
          min_duration = sec 2.0;
        }
      in
      T.run_workload tb ~profile:gen ~duration:horizon ();
      let records =
        List.stable_sort
          (fun (a : Vids.Trace.record) b -> Dsim.Time.compare a.Vids.Trace.at b.Vids.Trace.at)
          (Vids.Trace.records recorder)
      in
      let sched = Dsim.Scheduler.create () in
      let engine = Vids.Engine.create sched in
      let obs_state = start_obs obs engine in
      let prof =
        Obs.Prof.create
          ?registry:(Option.map fst obs_state)
          ?flight:(Option.map snd obs_state) ()
      in
      Vids.Engine.set_profiler engine (Some prof);
      let enforcer =
        Enforce.Enforcer.create ~policy:Enforce.Enforcer.default_policy sched engine
      in
      let ck_file = Filename.temp_file "vids-profile" ".checkpoint" in
      let journal_path = ck_file ^ ".journal" in
      let writer = Vids.Journal.create_writer ~registry:(Obs.Prof.registry prof) journal_path in
      Vids.Journal.attach writer engine;
      let alloc = Dsim.Packet.allocator () in
      let seq = ref 0 in
      let period = sec 15.0 in
      let next_ck = ref period in
      let checkpoint_now () =
        incr seq;
        Obs.Prof.enter prof Obs.Prof.Checkpoint;
        let now = Dsim.Scheduler.now sched in
        Vids.Snapshot.save ~path:ck_file (Vids.Snapshot.capture ~seq:!seq ~at:now engine);
        Vids.Journal.append writer (Vids.Journal.Checkpoint { at = now; seq = !seq });
        Obs.Prof.enter prof Obs.Prof.Journal_fsync;
        Vids.Journal.fsync_writer writer;
        Obs.Prof.exit prof Obs.Prof.Journal_fsync;
        Obs.Prof.exit prof Obs.Prof.Checkpoint
      in
      let t0 = Unix.gettimeofday () in
      List.iter
        (fun (r : Vids.Trace.record) ->
          Obs.Prof.enter prof Obs.Prof.Drive;
          Dsim.Scheduler.advance_to sched r.Vids.Trace.at;
          if Dsim.Time.compare r.Vids.Trace.at !next_ck >= 0 then begin
            checkpoint_now ();
            next_ck := Dsim.Time.add !next_ck period
          end;
          let pkt =
            Dsim.Packet.make alloc ~src:r.Vids.Trace.src ~dst:r.Vids.Trace.dst
              ~sent_at:r.Vids.Trace.at r.Vids.Trace.payload
          in
          Obs.Prof.enter prof Obs.Prof.Enforce_gate;
          ignore (Enforce.Enforcer.ingest enforcer pkt);
          Obs.Prof.exit prof Obs.Prof.Enforce_gate;
          Obs.Prof.exit prof Obs.Prof.Drive)
        records;
      (* Close detector windows and grace timers under the same
         accounting, then take the final checkpoint. *)
      Obs.Prof.enter prof Obs.Prof.Drive;
      Dsim.Scheduler.run_until sched (Dsim.Time.add horizon (sec 60.0));
      checkpoint_now ();
      Obs.Prof.exit prof Obs.Prof.Drive;
      let total_s = Unix.gettimeofday () -. t0 in
      Vids.Journal.close_writer writer;
      Obs.Prof.sample_gc prof;
      let n = List.length records in
      let report = Obs.Prof.report_of_snapshot (Obs.Metrics.snapshot (Obs.Prof.registry prof)) in
      let covered = Obs.Prof.total_seconds report in
      if json then
        print_endline
          (Obs.Json.obj
             [
               ("records", Obs.Json.int n);
               ("total_s", Obs.Json.float total_s);
               ("coverage", Obs.Json.float (if total_s > 0.0 then covered /. total_s else 0.0));
               ("stages", Obs.Prof.report_json ~records:n ~total_s report);
             ])
      else begin
        Format.printf "profiled %d record(s): %.4f s end-to-end, %.1f%% inside spans@." n
          total_s
          (if total_s > 0.0 then 100.0 *. covered /. total_s else 0.0);
        Format.printf "%a" (Obs.Prof.pp_table ~records:n ~total_s) report;
        let c = Vids.Engine.counters engine in
        let s = Enforce.Enforcer.stats enforcer in
        Format.printf "%d distinct alert(s); enforcement blocked %d of %d record(s)@."
          c.Vids.Engine.alerts_raised s.Enforce.Enforcer.blocked n
      end;
      finish_obs obs obs_state;
      (* The checkpoint/journal files only exist to exercise those stages;
         they are scratch, not a deliverable. *)
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ ck_file; ck_file ^ ".1"; journal_path ];
      0

(* ------------------------------------------------------------------ *)
(* recover: crash recovery from checkpoint + journal + trace           *)
(* ------------------------------------------------------------------ *)

let recover_sharded snapshot_path trace_path until shards obs =
  match trace_path with
  | None ->
      Format.eprintf "sharded recovery needs --trace to re-partition the traffic@.";
      1
  | Some trace_path -> (
      let ic = open_in trace_path in
      let loaded = Vids.Trace.load ic in
      close_in ic;
      match loaded with
      | Error e ->
          Format.eprintf "trace error: %s@." e;
          1
      | Ok trace -> (
          match
            Shard.Shard_engine.recover ?horizon:until
              ~telemetry:(telemetry_wanted obs) ~prefix:snapshot_path ~shards ~trace ()
          with
          | Error e ->
              Format.eprintf "recovery failed: %s@." e;
              1
          | Ok r ->
              Format.printf "recovered %d shards from %s.shard* (checkpoint #%d at %a)@."
                shards snapshot_path r.Shard.Shard_engine.snapshot_seq Dsim.Time.pp
                r.Shard.Shard_engine.snapshot_at;
              Array.iteri
                (fun i fb -> if fb then Format.printf "  shard %d used its rotated snapshot@." i)
                r.Shard.Shard_engine.used_fallback;
              Format.printf "replayed %d packet(s) recorded after the checkpoint@.@."
                r.Shard.Shard_engine.replayed;
              Shard.Shard_engine.report Format.std_formatter r.Shard.Shard_engine.outcome;
              Option.iter
                (fun o -> export_sharded_obs o r.Shard.Shard_engine.outcome)
                (if telemetry_wanted obs then Some obs else None);
              0))

let recover snapshot_path journal_path trace_path until shards obs enforce_policy =
  let until = Option.map sec until in
  if shards > 1 && enforce_policy <> None then begin
    Format.eprintf "--enforce needs the sequential engine; drop --shards@.";
    1
  end
  else if shards > 1 then recover_sharded snapshot_path trace_path until shards obs
  else
  let obs_state = make_obs obs in
  let prepare =
    Option.map
      (fun (metrics, flight) _sched engine ->
        Vids.Engine.set_telemetry engine ~metrics ~flight ())
      obs_state
  in
  let t0 = Unix.gettimeofday () in
  let recovered =
    match enforce_policy with
    | Some policy ->
        (* Enforcement recovery owns the hook ordering: the capture must
           replay through the restored gate or its drop decisions — and
           therefore the recovered digest — would diverge from the run
           that never crashed. *)
        Result.map
          (fun (fr, e) -> (fr, Some e))
          (Enforce.Recover.recover_files ~policy ?journal_path ?trace_path ?until
             ~snapshot_path ())
    | None ->
        Result.map
          (fun fr -> (fr, None))
          (Vids.Recovery.recover_files ?prepare ?journal_path ?trace_path ?until
             ~snapshot_path ())
  in
  match recovered with
  | Error e ->
      Format.eprintf "recovery failed: %s@." e;
      1
  | Ok (fr, enforcer) ->
      let o = fr.Vids.Recovery.outcome in
      Option.iter
        (fun (metrics, _) ->
          let h =
            Obs.Metrics.histogram metrics "vids_recovery_seconds"
              ~help:"Wall-clock duration of snapshot restore + journal merge + replay"
          in
          Obs.Metrics.observe h (Unix.gettimeofday () -. t0);
          let replayed =
            Obs.Metrics.counter metrics "vids_recovery_replayed_total"
              ~help:"Trace records replayed after the restored checkpoint"
          in
          Obs.Metrics.add replayed o.Vids.Recovery.replayed)
        obs_state;
      Format.printf "recovered from %s (checkpoint #%d at %a)%s@." fr.Vids.Recovery.snapshot_path
        o.Vids.Recovery.snapshot_seq Dsim.Time.pp o.Vids.Recovery.snapshot_at
        (if fr.Vids.Recovery.used_fallback then " [fallback]" else "");
      List.iter
        (fun (path, reason) -> Format.printf "rejected %s: %s@." path reason)
        fr.Vids.Recovery.rejected;
      Format.printf "journal: %d alert(s) merged, %d eviction(s) noted, %d line(s) skipped@."
        o.Vids.Recovery.journal_alerts o.Vids.Recovery.journal_evictions
        (List.length fr.Vids.Recovery.journal_skipped);
      List.iter
        (fun (line, reason) -> Format.printf "  journal line %d skipped: %s@." line reason)
        fr.Vids.Recovery.journal_skipped;
      List.iter
        (fun (line, reason) -> Format.printf "  trace line %d skipped: %s@." line reason)
        fr.Vids.Recovery.trace_skipped;
      Format.printf "replayed %d packet(s) recorded after the checkpoint@.@."
        o.Vids.Recovery.replayed;
      Option.iter
        (fun e ->
          print_enforcement e;
          print_string (Enforce.Enforcer.rules_text e))
        enforcer;
      Vids.Report.full Format.std_formatter o.Vids.Recovery.engine;
      finish_obs obs obs_state;
      0

(* ------------------------------------------------------------------ *)
(* rules                                                               *)
(* ------------------------------------------------------------------ *)

let rules snapshot_path json =
  match Vids.Snapshot.load snapshot_path with
  | Error e ->
      Format.eprintf "cannot load %s: %s@." snapshot_path e;
      1
  | Ok snap -> (
      match List.assoc_opt Enforce.Enforcer.ext_tag (Vids.Snapshot.ext snap) with
      | None ->
          Format.printf "no enforcement state in %s (checkpoint #%d at %a)@." snapshot_path
            (Vids.Snapshot.seq snap) Dsim.Time.pp (Vids.Snapshot.at snap);
          0
      | Some payload -> (
          let tbl = Enforce.Block_table.create () in
          match Enforce.Block_table.restore tbl payload with
          | Error e ->
              Format.eprintf "corrupt enforcement state in %s: %s@." snapshot_path e;
              1
          | Ok () ->
              let now = Vids.Snapshot.at snap in
              if json then print_endline (Enforce.Block_table.to_json tbl ~now)
              else print_string (Enforce.Block_table.to_text tbl ~now);
              0))

(* ------------------------------------------------------------------ *)
(* parse                                                               *)
(* ------------------------------------------------------------------ *)

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match Sip.Msg.parse text with
  | Error e ->
      Format.eprintf "parse error: %s@." e;
      1
  | Ok msg ->
      Format.printf "%a@." Sip.Msg.pp msg;
      (match msg.Sip.Msg.start with
      | Sip.Msg.Request { meth; uri } ->
          Format.printf "  request: %a %s@." Sip.Msg_method.pp meth (Sip.Uri.to_string uri)
      | Sip.Msg.Response { code; reason } -> Format.printf "  response: %d %s@." code reason);
      Sip.Header.fold
        (fun name value () -> Format.printf "  %s: %s@." name value)
        msg.Sip.Msg.headers ();
      if msg.Sip.Msg.body <> "" then begin
        match Sip.Msg.content_type msg with
        | Some "application/sdp" -> (
            match Sdp.parse msg.Sip.Msg.body with
            | Ok d ->
                List.iter
                  (fun m ->
                    Format.printf "  sdp media: %s port %d formats %s@." m.Sdp.media_type
                      m.Sdp.port
                      (String.concat "," (List.map string_of_int m.Sdp.formats)))
                  d.Sdp.media
            | Error e -> Format.printf "  sdp parse error: %s@." e)
        | _ -> Format.printf "  body: %d bytes@." (String.length msg.Sip.Msg.body)
      end;
      0

(* ------------------------------------------------------------------ *)
(* export-fsm                                                          *)
(* ------------------------------------------------------------------ *)

let machines =
  [
    ("sip-call", fun () -> Vids.Sip_call_machine.spec Vids.Config.default);
    ("rtp-call", fun () -> Vids.Rtp_call_machine.spec Vids.Config.default);
    ("invite-flood", fun () -> Vids.Invite_flood_machine.spec Vids.Config.default);
    ("media-spam", fun () -> Vids.Media_spam_machine.spec Vids.Config.default);
    ("drdos", fun () -> Vids.Drdos_machine.spec Vids.Config.default);
  ]

(* The shipped machines grouped the way [Vids.Fact_base] actually couples
   them: SIP and RTP share each call's globals and δ channels; the three
   detectors run alone. *)
let lint_systems () =
  let cfg = Vids.Config.default in
  [
    ( "call",
      [
        (Vids.Sip_call_machine.spec cfg, Vids.Sip_call_machine.vars);
        (Vids.Rtp_call_machine.spec cfg, Vids.Rtp_call_machine.vars);
      ] );
    ("invite-flood", [ (Vids.Invite_flood_machine.spec cfg, Vids.Invite_flood_machine.vars) ]);
    ("media-spam", [ (Vids.Media_spam_machine.spec cfg, Vids.Media_spam_machine.vars) ]);
    ("drdos", [ (Vids.Drdos_machine.spec cfg, Vids.Drdos_machine.vars) ]);
  ]

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let write_dot dir report (spec : Efsm.Machine.spec) =
  let path =
    Filename.concat dir (String.lowercase_ascii spec.Efsm.Machine.spec_name ^ ".dot")
  in
  let oc = open_out path in
  output_string oc (Analyze.Report.render_dot report spec);
  close_out oc;
  Format.eprintf "wrote %s@." path

let lint_builtins json dot_dir =
  let reports =
    List.map
      (fun (name, sys) -> (name, sys, Analyze.Verifier.verify_system sys))
      (lint_systems ())
  in
  (match dot_dir with
  | None -> ()
  | Some dir ->
      ensure_dir dir;
      List.iter
        (fun (_, sys, report) ->
          List.iter (fun (spec, _) -> write_dot dir report spec) sys)
        reports);
  if json then
    print_endline
      (Obs.Json.obj
         (List.map (fun (name, _, report) -> (name, Analyze.Report.render_json report)) reports))
  else
    List.iter
      (fun (name, _, report) ->
        Format.printf "### system %s@.%s@." name (Analyze.Report.render_text report))
      reports;
  if List.exists (fun (_, _, r) -> Analyze.Verifier.has_errors r) reports then 1 else 0

(* Lint external [.vspec] files: front-end diagnostics (with caret
   snippets) plus the full verifier over the loaded machines, findings
   mapped back to source positions. *)
let lint_vspec json dot_dir files =
  let cfg = Vids.Config.default in
  match
    Analyze.Speclint.lint_files ~known_machines:Vids.Spec_load.known_machines
      ~externs:(Vids.Spec_load.externs cfg) files
  with
  | Error e ->
      Format.eprintf "%s@." e;
      1
  | Ok r ->
      (match dot_dir with
      | None -> ()
      | Some dir ->
          ensure_dir dir;
          List.iter
            (fun (l : Spec.Front_end.loaded) ->
              write_dot dir r.Analyze.Speclint.report l.Spec.Front_end.l_spec)
            r.Analyze.Speclint.loaded);
      if json then print_endline (Analyze.Speclint.render_json r)
      else print_string (Analyze.Speclint.render_text r);
      if Analyze.Speclint.ok r then 0 else 1

(* --emit NAME: dump a builtin machine as canonical .vspec text — the
   generator for examples/specs/*.vspec. *)
let emit_builtin name =
  let builtins = Vids.Spec_load.builtins Vids.Config.default in
  match Vids.Spec_load.builtin_for Vids.Config.default name with
  | None ->
      Format.eprintf "unknown machine %S (choose from %s)@." name
        (String.concat ", " (List.map fst builtins));
      1
  | Some (spec, vars) -> (
      match Spec.Printer.of_machine spec vars with
      | exception Spec.Printer.Unprintable msg ->
          Format.eprintf "cannot print %s as .vspec: %s@." name msg;
          1
      | ast ->
          print_string (Spec.Printer.print_machine ast);
          0)

let lint json dot_dir emit files =
  match emit with
  | Some name -> emit_builtin name
  | None -> if files = [] then lint_builtins json dot_dir else lint_vspec json dot_dir files

let check_specs () =
  let failures = ref 0 in
  List.iter
    (fun (name, spec) ->
      let spec = spec () in
      let r = Analyze.Verifier.verify_spec spec in
      match Analyze.Verifier.machine_errors r with
      | [] ->
          Format.printf "%-14s ok: %d states reachable, %d transitions@." name
            (List.length r.Analyze.Verifier.reachable)
            (List.length spec.Efsm.Machine.transitions)
      | errors ->
          incr failures;
          List.iter
            (fun f -> Format.printf "%-14s FAILED: %s@." name (Analyze.Finding.to_string f))
            errors)
    machines;
  if !failures = 0 then 0
  else begin
    Format.printf "(run `vids-cli lint` for the full report)@.";
    1
  end

let export_fsm name =
  match List.assoc_opt name machines with
  | Some spec ->
      print_string (Efsm.Dot.of_spec (spec ()));
      0
  | None ->
      Format.eprintf "unknown machine %S (choose from %s)@." name
        (String.concat ", " (List.map fst machines));
      1

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic RNG seed.")

let governance_term =
  let governed =
    Arg.(
      value & flag
      & info [ "governed" ]
          ~doc:"Enable the resource-governance preset (caps, ageing sweep, degradation).")
  in
  let max_calls =
    Arg.(
      value & opt (some int) None
      & info [ "max-calls" ] ~docv:"N" ~doc:"Cap on tracked calls (0 = unbounded).")
  in
  let max_detectors =
    Arg.(
      value & opt (some int) None
      & info [ "max-detectors" ] ~docv:"N" ~doc:"Cap on attack detector instances (0 = unbounded).")
  in
  let call_max_age =
    Arg.(
      value & opt (some float) None
      & info [ "call-max-age" ] ~docv:"SEC"
          ~doc:"Age after which idle call records are swept (0 = never).")
  in
  let sweep_interval =
    Arg.(
      value & opt (some float) None
      & info [ "sweep-interval" ] ~docv:"SEC"
          ~doc:"Period of the scheduled ageing sweep (0 = disabled).")
  in
  let high =
    Arg.(
      value & opt (some int) None
      & info [ "degrade-high-water" ] ~docv:"N"
          ~doc:"Active-state level at which RTP stream analysis is shed (0 = never).")
  in
  let low =
    Arg.(
      value & opt (some int) None
      & info [ "degrade-low-water" ] ~docv:"N"
          ~doc:"Active-state level at which full analysis resumes (0 = 3/4 of high water).")
  in
  let make governed max_calls max_detectors call_max_age sweep_interval degrade_high_water
      degrade_low_water =
    { governed; max_calls; max_detectors; call_max_age; sweep_interval; degrade_high_water;
      degrade_low_water }
  in
  Term.(
    const make $ governed $ max_calls $ max_detectors $ call_max_age $ sweep_interval $ high $ low)

let checkpoint_term =
  let interval =
    Arg.(
      value & opt float 0.0
      & info [ "checkpoint-interval" ] ~docv:"SEC"
          ~doc:"Snapshot the engine every $(docv) of virtual time (0 = off).")
  in
  let file =
    Arg.(
      value & opt string "vids.checkpoint"
      & info [ "checkpoint-file" ] ~docv:"FILE"
          ~doc:
            "Checkpoint path; the previous snapshot rotates to $(docv).1 and the write-ahead \
             journal lives at $(docv).journal.")
  in
  Term.(const (fun interval file -> { interval; file }) $ interval $ file)

let shards_term =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition the analysis across $(docv) worker domains (1 = the sequential engine). \
           More than one shard implies monitor semantics and per-shard checkpoint files.")

let obs_term =
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the end-of-run metrics export to $(docv): Prometheus text exposition, or \
             JSONL when $(docv) ends in .json/.jsonl.  Enables telemetry.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Append flight-recorder dumps (machine quarantines, supervisor restarts, end of \
             run) to $(docv) as JSONL.  Enables telemetry.")
  in
  let trace_ring =
    Arg.(
      value & opt int 256
      & info [ "trace-ring" ] ~docv:"N"
          ~doc:"Capacity of the flight-recorder ring (most recent $(docv) pipeline events).")
  in
  Term.(
    const (fun metrics_out trace_out trace_ring -> { metrics_out; trace_out; trace_ring })
    $ metrics_out $ trace_out $ trace_ring)

let profile_flag =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Attach the hot-path profiler: per-stage span timing and allocation attribution, \
           printed as a breakdown table (a $(b,profile) key under --json) and included in \
           --metrics-out exports.")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the final report as one JSON object on stdout (progress and export \
           announcements go to stderr).")

let spec_term =
  Arg.(
    value & opt_all file []
    & info [ "spec" ] ~docv:"FILE.vspec"
        ~doc:
          "Load machine definitions from a $(b,.vspec) file, replacing the builtin of the \
           same name (SIP, RTP, INVITE_FLOOD, MEDIA_SPAM, DRDOS).  Repeatable.  The file is \
           parsed, typechecked and verified before the run starts; diagnostics abort it.")

let enforce_term =
  let enforce =
    Arg.(
      value & flag
      & info [ "enforce" ]
          ~doc:
            "Prevention mode: act on alerts — drop flooding sources, rate-limit media \
             floods, tear down hijacked calls.  Decisions are journaled and checkpointed \
             so they survive a crash.")
  in
  let block_ttl =
    Arg.(
      value & opt float 60.0
      & info [ "block-ttl" ] ~docv:"SEC"
          ~doc:"Lifetime of enforcement rules; repeat alerts refresh it.")
  in
  let fail_closed =
    Arg.(
      value & flag
      & info [ "fail-closed" ]
          ~doc:
            "When enforcement cannot do its job (rule-table overflow, corrupt recovery \
             state), drop all traffic instead of failing open.")
  in
  Term.(
    const (fun on ttl fc ->
        if not on then None
        else
          Some
            {
              Enforce.Enforcer.default_policy with
              Enforce.Enforcer.block_ttl = sec ttl;
              fail_closed = fc;
            })
    $ enforce $ block_ttl $ fail_closed)

let simulate_cmd =
  let n_ua = Arg.(value & opt int 10 & info [ "uas" ] ~doc:"UAs per enterprise network.") in
  let mode =
    Arg.(value & opt string "inline" & info [ "vids" ] ~doc:"vIDS mode: inline|monitor|off.")
  in
  let minutes = Arg.(value & opt float 10.0 & info [ "minutes" ] ~doc:"Workload duration.") in
  let gap =
    Arg.(value & opt float 120.0 & info [ "mean-gap" ] ~doc:"Mean seconds between calls per UA.")
  in
  let talk = Arg.(value & opt float 45.0 & info [ "mean-talk" ] ~doc:"Mean call seconds.") in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the enterprise workload and report performance")
    Term.(
      const simulate $ seed_arg $ n_ua $ mode $ minutes $ gap $ talk $ governance_term
      $ checkpoint_term $ shards_term $ obs_term $ spec_term)

let detect_cmd =
  let attacks =
    Arg.(value & pos_all string [] & info [] ~docv:"ATTACK" ~doc:"Attacks to launch.")
  in
  Cmd.v
    (Cmd.info "detect" ~doc:"Launch attack scenarios and print the vIDS alert log")
    Term.(
      const detect $ seed_arg $ attacks $ governance_term $ checkpoint_term $ shards_term
      $ obs_term $ enforce_term $ profile_flag $ json_flag $ spec_term)

let parse_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "parse" ~doc:"Parse a SIP message from a file") Term.(const parse_file $ file)

let record_cmd =
  let attacks =
    Arg.(value & pos_all string [] & info [] ~docv:"ATTACK" ~doc:"Attacks to include.")
  in
  let workload =
    Arg.(
      value & opt float 0.0
      & info [ "workload" ] ~docv:"MIN"
          ~doc:"Also run $(docv) minutes of benign background calls (0 = none).")
  in
  let no_attacks =
    Arg.(
      value & flag
      & info [ "no-attacks" ] ~doc:"Record only the benign workload (needs --workload).")
  in
  let out =
    Arg.(
      value & opt string "vids.trace"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Trace file; a $(b,.pcap) suffix writes a libpcap capture instead of text.")
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Capture sensor traffic (with attacks) to a trace file")
    Term.(const record $ seed_arg $ attacks $ workload $ no_attacks $ out)

let run_cmd =
  let captures =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"CAPTURE" ~doc:"libpcap files to stream ($(b,.pcap)).")
  in
  let pace =
    Arg.(
      value & flag
      & info [ "pace" ]
          ~doc:"Replay capture files at their recorded inter-arrival times instead of as fast \
                as the disk reads.")
  in
  let listen =
    Arg.(
      value & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:"Also listen for live UDP datagrams (PORT alone binds 127.0.0.1).")
  in
  let queue =
    Arg.(
      value & opt int 4096
      & info [ "queue" ] ~docv:"N"
          ~doc:"Ingest queue capacity; above 3/4 of $(docv) media is shed at the door, at \
                $(docv) the oldest record is displaced.")
  in
  let max_runtime =
    Arg.(
      value & opt (some float) None
      & info [ "max-runtime" ] ~docv:"SEC" ~doc:"Stop (gracefully) after $(docv) wall seconds.")
  in
  let record_out =
    Arg.(
      value & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:"Capture every dispatched packet to $(docv) (text trace), for offline replay \
                and crash recovery.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the live-ingestion daemon: stream captures and/or listen on UDP, analyze in \
          real time, checkpoint periodically, drain gracefully on SIGINT/SIGTERM.  Exits 0 \
          on a clean stop, 3 when attack alerts were raised, nonzero on faults.")
    Term.(
      const daemon $ captures $ pace $ listen $ queue $ max_runtime $ governance_term
      $ checkpoint_term $ obs_term $ record_out $ enforce_term $ profile_flag $ json_flag
      $ spec_term)

let analyze_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Replay a recorded trace through vIDS offline")
    Term.(
      const analyze $ file $ checkpoint_term $ shards_term $ obs_term $ profile_flag
      $ json_flag $ spec_term)

let profile_cmd =
  let attacks =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ATTACK" ~doc:"Attacks to include (default: the full suite).")
  in
  let minutes =
    Arg.(
      value & opt float 4.0
      & info [ "minutes" ] ~docv:"MIN"
          ~doc:
            "Benign background-call workload duration (the attack suite's own horizon sets a \
             floor).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Capture the attack suite plus benign calls, replay it through a fully instrumented \
          sequential stack — profiler, enforcement gate, periodic checkpoints, journal \
          fsyncs — and print the per-stage wall-time / allocation breakdown.  --json emits \
          the ranking with bytes allocated per record.")
    Term.(const profile_workload $ seed_arg $ minutes $ attacks $ json_flag $ obs_term)

let recover_cmd =
  let snapshot =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"SNAPSHOT"
          ~doc:"Checkpoint file; a corrupt or missing primary falls back to $(docv).1.")
  in
  let journal =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docv:"FILE" ~doc:"Write-ahead journal to merge (loaded leniently).")
  in
  let trace =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Recorded packet trace; records after the checkpoint are replayed.")
  in
  let until =
    Arg.(
      value & opt (some float) None
      & info [ "until" ] ~docv:"SEC"
          ~doc:"Stop the recovered clock at $(docv) instead of draining every pending event.")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Rebuild a crashed engine from checkpoint + journal + trace and print its report")
    Term.(
      const recover $ snapshot $ journal $ trace $ until $ shards_term $ obs_term
      $ enforce_term)

let rules_cmd =
  let snapshot =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"SNAPSHOT" ~doc:"Checkpoint whose enforcement rules to print.")
  in
  Cmd.v
    (Cmd.info "rules"
       ~doc:
         "Print the enforcement rules stored in a checkpoint — what an enforcing sensor \
          was blocking when it wrote it.")
    Term.(const rules $ snapshot $ json_flag)

let lint_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the verification report as one JSON object on stdout.")
  in
  let dot_dir =
    Arg.(
      value & opt (some string) None
      & info [ "dot-dir" ] ~docv:"DIR"
          ~doc:"Write each machine's Graphviz diagram, annotated with findings, into $(docv).")
  in
  let emit =
    Arg.(
      value & opt (some string) None
      & info [ "emit" ] ~docv:"MACHINE"
          ~doc:
            "Print a builtin machine as canonical $(b,.vspec) text and exit (the generator \
             for examples/specs/*.vspec).")
  in
  let files =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE.vspec"
          ~doc:
            "External spec files to lint instead of the builtins: lex/parse/typecheck with \
             file:line:col diagnostics and caret snippets, then the full verifier over the \
             loaded machines.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify the machine specifications: guard disjointness (determinism), \
          guard-aware reachability, variable init/domain hygiene, timer hygiene, and \
          cross-machine sync-channel soundness.  With $(b,FILE.vspec) arguments, lint \
          external specs with positioned diagnostics instead of the builtins.  Exits \
          nonzero on error-severity findings.")
    Term.(const lint $ json $ dot_dir $ emit $ files)

let check_specs_cmd =
  Cmd.v
    (Cmd.info "check-specs"
       ~doc:
         "Quick per-machine structural check (error findings only); see `lint` for the full \
          verifier.")
    Term.(const check_specs $ const ())

let export_cmd =
  let machine_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"MACHINE") in
  Cmd.v
    (Cmd.info "export-fsm" ~doc:"Print a protocol/attack state machine as Graphviz dot")
    Term.(const export_fsm $ machine_arg)

let () =
  let info = Cmd.info "vids-cli" ~version:"1.0.0" ~doc:"VoIP intrusion detection testbed" in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            simulate_cmd; detect_cmd; record_cmd; run_cmd; analyze_cmd; profile_cmd;
            recover_cmd; rules_cmd; parse_cmd; lint_cmd; check_specs_cmd; export_cmd;
          ]))
