(* Sharded engine: SPSC queue, partitioning, sequential equivalence,
   cross-shard aggregation, checkpoint/recovery consistency — plus the
   satellites that ride with the subsystem (Call-ID interning, latency
   quantiles, backpressure accounting). *)

let time = Alcotest.testable Dsim.Time.pp Dsim.Time.equal

let q ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Trace fodder (same dialog shapes as bench/shard.ml, smaller)        *)
(* ------------------------------------------------------------------ *)

let ms = Dsim.Time.of_ms
let sip_addr host = Dsim.Addr.v host 5060

let invite ~call_id ~media_host ~port =
  let body =
    Printf.sprintf
      "v=0\r\no=alice 0 0 IN IP4 %s\r\ns=-\r\nc=IN IP4 %s\r\nt=0 0\r\nm=audio %d RTP/AVP 18\r\n"
      media_host media_host port
  in
  Printf.sprintf
    "INVITE sip:bob@b.example SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>\r\n\
     Call-ID: %s\r\nCSeq: 1 INVITE\r\n\
     Contact: <sip:alice@10.1.0.10:5060>\r\n\
     Content-Type: application/sdp\r\nContent-Length: %d\r\n\r\n%s"
    call_id call_id call_id (String.length body) body

let response ~call_id ~code ~cseq ~media_host ~port =
  let body =
    match media_host with
    | None -> ""
    | Some host ->
        Printf.sprintf
          "v=0\r\no=bob 0 0 IN IP4 %s\r\ns=-\r\nc=IN IP4 %s\r\nt=0 0\r\nm=audio %d RTP/AVP 18\r\n"
          host host port
  in
  Printf.sprintf
    "SIP/2.0 %d X\r\nVia: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: %s\r\n%sContent-Length: %d\r\n\r\n%s"
    code call_id call_id call_id call_id cseq
    (if media_host <> None then "Content-Type: application/sdp\r\n" else "")
    (String.length body) body

let ack ~call_id =
  Printf.sprintf
    "ACK sip:bob@10.2.0.10 SIP/2.0\r\nVia: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKa-%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\nTo: <sip:bob@b.example>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: 1 ACK\r\n\r\n"
    call_id call_id call_id call_id

let bye ~call_id =
  Printf.sprintf
    "BYE sip:bob@10.2.0.10 SIP/2.0\r\nVia: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKb-%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\nTo: <sip:bob@b.example>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: 2 BYE\r\n\r\n"
    call_id call_id call_id call_id

let rtp_bytes ~seq =
  Rtp.Rtp_packet.encode
    (Rtp.Rtp_packet.make ~payload_type:18 ~sequence:seq
       ~timestamp:(Int32.of_int (160 * seq)) ~ssrc:77l (String.make 20 'v'))

(* [shape] picks the dialog per call: 0 = full dialog with media, 1 =
   abandoned after INVITE, 2 = full dialog whose BYE is never answered,
   3 = a malformed SIP message instead of a call. *)
let make_trace shapes =
  let records = ref [] in
  let add at src dst payload = records := { Vids.Trace.at; src; dst; payload } :: !records in
  let a_sig = sip_addr "10.1.0.2" and b_sig = sip_addr "10.2.0.2" in
  List.iteri
    (fun i shape ->
      let call_id = Printf.sprintf "t-%d" i in
      let t0 = ms (float_of_int (30 * i)) in
      let ( +& ) a b = Dsim.Time.add a b in
      if shape = 3 then
        add t0 (sip_addr (Printf.sprintf "10.7.0.%d" (i mod 200))) b_sig "JUNK\r\n\r\n"
      else begin
        let a_media = Printf.sprintf "10.1.%d.%d" (1 + (i / 200)) (i mod 200) in
        let b_media = Printf.sprintf "10.2.%d.%d" (1 + (i / 200)) (i mod 200) in
        let port = 20000 in
        add t0 a_sig b_sig (invite ~call_id ~media_host:a_media ~port);
        if shape <> 1 then begin
          add (t0 +& ms 20.)
            b_sig a_sig (response ~call_id ~code:200 ~cseq:"1 INVITE" ~media_host:(Some b_media) ~port);
          add (t0 +& ms 40.) a_sig b_sig (ack ~call_id);
          let media_src = Dsim.Addr.v a_media port in
          let media_dst = Dsim.Addr.v b_media port in
          for s = 0 to 3 do
            add (t0 +& ms (60. +. (20. *. float_of_int s))) media_src media_dst (rtp_bytes ~seq:s)
          done;
          add (t0 +& ms 400.) a_sig b_sig (bye ~call_id);
          if shape <> 2 then
            add (t0 +& ms 420.)
              b_sig a_sig (response ~call_id ~code:200 ~cseq:"2 BYE" ~media_host:None ~port)
        end
      end)
    shapes;
  List.rev !records

let is_global (a : Vids.Alert.t) =
  match a.Vids.Alert.kind with
  | Vids.Alert.Invite_flood | Vids.Alert.Drdos -> true
  | _ -> false

let local_multiset alerts =
  alerts
  |> List.filter (fun a -> not (is_global a))
  |> List.map (fun (a : Vids.Alert.t) ->
         Printf.sprintf "%s|%s|%d"
           (Vids.Alert.kind_to_string a.kind)
           a.subject (Dsim.Time.to_us a.at))
  |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* SPSC queue                                                          *)
(* ------------------------------------------------------------------ *)

let spsc_fifo () =
  let t = Shard.Spsc.create ~capacity:4 in
  Alcotest.(check bool) "empty pop" true (Shard.Spsc.pop t = None);
  (* Several wraparounds of the 4-slot ring. *)
  for i = 0 to 19 do
    Shard.Spsc.push t i;
    Shard.Spsc.push t (i + 100);
    Alcotest.(check (option int)) "fifo a" (Some i) (Shard.Spsc.pop t);
    Alcotest.(check (option int)) "fifo b" (Some (i + 100)) (Shard.Spsc.pop t)
  done;
  Alcotest.(check int) "no stalls" 0 (Shard.Spsc.stalls t);
  Alcotest.(check int) "drained" 0 (Shard.Spsc.length t)

let spsc_capacity_and_stalls () =
  let t = Shard.Spsc.create ~capacity:3 in
  Alcotest.(check int) "rounded up to a power of two" 4 (Shard.Spsc.capacity t);
  for i = 0 to 3 do
    Alcotest.(check bool) "fits" true (Shard.Spsc.try_push t i)
  done;
  Alcotest.(check bool) "full" false (Shard.Spsc.try_push t 99);
  (* A blocked [push] must count one stall per element once the consumer
     frees a slot. *)
  let d =
    Domain.spawn (fun () ->
        Unix.sleepf 0.02;
        Shard.Spsc.pop t)
  in
  Shard.Spsc.push t 4;
  Alcotest.(check (option int)) "consumer got head" (Some 0) (Domain.join d);
  Alcotest.(check int) "one stall" 1 (Shard.Spsc.stalls t)

let spsc_cross_domain () =
  let t = Shard.Spsc.create ~capacity:8 in
  let n = 50_000 in
  let consumer =
    Domain.spawn (fun () ->
        let rec next acc got =
          if got = n then List.rev acc
          else
            match Shard.Spsc.pop t with
            | Some v -> next (v :: acc) (got + 1)
            | None ->
                Domain.cpu_relax ();
                next acc got
        in
        next [] 0)
  in
  for i = 0 to n - 1 do
    Shard.Spsc.push t i
  done;
  let received = Domain.join consumer in
  Alcotest.(check int) "all delivered" n (List.length received);
  Alcotest.(check bool) "in order" true (received = List.init n Fun.id)

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)
(* ------------------------------------------------------------------ *)

let partition_call_affinity () =
  let p = Shard.Partition.create ~shards:3 in
  let trace = make_trace [ 0; 0; 1; 2; 0; 3 ] in
  (* Every SIP message of one Call-ID routes to one shard, and every media
     packet of a negotiated address routes to its call's shard. *)
  let by_call = Hashtbl.create 8 in
  List.iter
    (fun (r : Vids.Trace.record) ->
      let shard = Shard.Partition.route p r in
      match Sip.Msg.parse r.payload with
      | Ok msg -> (
          match Sip.Msg.call_id msg with
          | Ok cid -> (
              match Hashtbl.find_opt by_call cid with
              | None -> Hashtbl.add by_call cid shard
              | Some s -> Alcotest.(check int) ("call " ^ cid) s shard)
          | Error _ -> ())
      | Error _ -> ())
    trace;
  Alcotest.(check bool) "media bound" true (Shard.Partition.media_bindings p > 0)

let partition_media_follows_call () =
  let p = Shard.Partition.create ~shards:4 in
  let trace = make_trace [ 0 ] in
  let call_shard = ref (-1) in
  List.iter
    (fun (r : Vids.Trace.record) ->
      let shard = Shard.Partition.route p r in
      if Dsim.Addr.port r.dst = 5060 || Dsim.Addr.port r.src = 5060 then begin
        if !call_shard = -1 then call_shard := shard
      end
      else Alcotest.(check int) "rtp on the call's shard" !call_shard shard)
    trace

(* ------------------------------------------------------------------ *)
(* Shard engine vs sequential                                          *)
(* ------------------------------------------------------------------ *)

let shards_match_sequential () =
  let trace = make_trace (List.init 40 (fun i -> i mod 4)) in
  let sequential = Vids.Trace.replay trace in
  let expected = local_multiset (Vids.Engine.alerts sequential) in
  List.iter
    (fun shards ->
      let outcome = Shard.Shard_engine.run_trace ~shards trace in
      Alcotest.(check (list string))
        (Printf.sprintf "alert multiset at %d shards" shards)
        expected
        (local_multiset outcome.Shard.Shard_engine.alerts);
      let c = outcome.Shard.Shard_engine.counters in
      let s = Vids.Engine.counters sequential in
      Alcotest.(check int) "sip packets" s.Vids.Engine.sip_packets c.Vids.Engine.sip_packets;
      Alcotest.(check int) "rtp packets" s.Vids.Engine.rtp_packets c.Vids.Engine.rtp_packets;
      Alcotest.(check int)
        "malformed" s.Vids.Engine.malformed_packets c.Vids.Engine.malformed_packets)
    [ 1; 2; 3 ]

let single_shard_is_sequential () =
  (* With one shard nothing is deferred: even the global detectors must
     agree exactly, alert times included. *)
  let flood =
    List.init 10 (fun k ->
        {
          Vids.Trace.at = ms (float_of_int (40 * k));
          src = sip_addr (Printf.sprintf "10.9.0.%d" k);
          dst = sip_addr "10.2.0.2";
          payload = invite ~call_id:(Printf.sprintf "f-%d" k) ~media_host:"10.9.1.1" ~port:21000;
        })
  in
  let trace = make_trace [ 0; 1; 2 ] @ flood in
  let sequential = Vids.Trace.replay trace in
  let outcome = Shard.Shard_engine.run_trace ~shards:1 trace in
  let all alerts =
    List.sort String.compare
      (List.map
         (fun (a : Vids.Alert.t) ->
           Printf.sprintf "%s|%s|%d"
             (Vids.Alert.kind_to_string a.kind)
             a.subject (Dsim.Time.to_us a.at))
         alerts)
  in
  Alcotest.(check (list string))
    "identical alert log" (all (Vids.Engine.alerts sequential))
    (all outcome.Shard.Shard_engine.alerts);
  Alcotest.(check (list string)) "no coordinator alerts" []
    (all outcome.Shard.Shard_engine.global_alerts)

let aggregated_flood_detected () =
  (* 10 INVITEs with distinct Call-IDs inside one second scatter across
     shards; only the coordinator can see the burst. *)
  let flood =
    List.init 10 (fun k ->
        {
          Vids.Trace.at = ms (float_of_int (40 * k));
          src = sip_addr (Printf.sprintf "10.9.0.%d" k);
          dst = sip_addr "10.2.0.2";
          payload = invite ~call_id:(Printf.sprintf "f-%d" k) ~media_host:"10.9.1.1" ~port:21000;
        })
  in
  let sequential = Vids.Trace.replay flood in
  let seq_flood =
    List.filter (fun (a : Vids.Alert.t) -> a.kind = Vids.Alert.Invite_flood)
      (Vids.Engine.alerts sequential)
  in
  Alcotest.(check bool) "sequential sees the flood" true (seq_flood <> []);
  let outcome = Shard.Shard_engine.run_trace ~shards:3 flood in
  match outcome.Shard.Shard_engine.global_alerts with
  | [ a ] ->
      Alcotest.(check bool) "kind" true (a.Vids.Alert.kind = Vids.Alert.Invite_flood);
      let s = List.hd seq_flood in
      Alcotest.(check string) "subject" s.Vids.Alert.subject a.Vids.Alert.subject;
      let window = Vids.Config.default.Vids.Config.invite_flood_window in
      Alcotest.(check bool) "within one window of sequential" true
        (abs (Dsim.Time.to_us a.Vids.Alert.at - Dsim.Time.to_us s.Vids.Alert.at)
        <= Dsim.Time.to_us window)
  | other ->
      Alcotest.failf "expected exactly one aggregated alert, got %d" (List.length other)

let backpressure_counted () =
  let trace = make_trace (List.init 30 (fun _ -> 0)) in
  let outcome = Shard.Shard_engine.run_trace ~queue_capacity:2 ~shards:2 trace in
  let stalls =
    Array.fold_left (fun acc s -> acc + s.Shard.Shard_engine.stalls) 0
      outcome.Shard.Shard_engine.per_shard
  in
  Alcotest.(check bool) "tiny queues stall the producer" true (stalls > 0);
  Alcotest.(check int) "stalls surface in the merged counters" stalls
    outcome.Shard.Shard_engine.counters.Vids.Engine.backpressure_stalls;
  (* Stalled records are delivered late, never dropped. *)
  let fed = Array.fold_left (fun acc s -> acc + s.Shard.Shard_engine.fed) 0
      outcome.Shard.Shard_engine.per_shard in
  Alcotest.(check int) "nothing dropped" (List.length trace) fed

let latency_measured () =
  let trace = make_trace [ 0; 0; 1 ] in
  let outcome = Shard.Shard_engine.run_trace ~measure_latency:true ~shards:2 trace in
  match outcome.Shard.Shard_engine.latency with
  | None -> Alcotest.fail "expected a merged latency distribution"
  | Some qt ->
      Alcotest.(check int) "one sample per record" (List.length trace)
        (Dsim.Stat.Quantiles.count qt);
      Alcotest.(check bool) "quantiles ordered" true
        (Dsim.Stat.Quantiles.p50 qt <= Dsim.Stat.Quantiles.p99 qt)

(* ------------------------------------------------------------------ *)
(* Checkpoint / recovery                                               *)
(* ------------------------------------------------------------------ *)

let with_prefix f =
  let prefix = Filename.temp_file "vids-shard" ".ck" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun suffix ->
          List.iter
            (fun i ->
              let p = Shard.Shard_engine.snapshot_path prefix i ^ suffix in
              if Sys.file_exists p then Sys.remove p)
            [ 0; 1; 2; 3 ])
        [| ""; ".1"; ".journal" |];
      if Sys.file_exists prefix then Sys.remove prefix)
    (fun () -> f prefix)

let recovery_consistent () =
  with_prefix (fun prefix ->
      let shards = 3 in
      let trace = make_trace (List.init 60 (fun i -> i mod 4)) in
      let checkpoint = { Shard.Shard_engine.prefix; every = Dsim.Time.of_sec 0.4 } in
      let live = Shard.Shard_engine.run_trace ~checkpoint ~shards trace in
      (* Snapshot files exist for every shard and agree on the sequence
         number (the dispatcher broadcasts every boundary). *)
      let seqs =
        List.init shards (fun i ->
            match Vids.Snapshot.load (Shard.Shard_engine.snapshot_path prefix i) with
            | Ok s -> Vids.Snapshot.seq s
            | Error e -> Alcotest.failf "shard %d snapshot: %s" i e)
      in
      (match seqs with
      | s :: rest -> List.iter (Alcotest.(check int) "aligned checkpoints" s) rest
      | [] -> ());
      match Shard.Shard_engine.recover ~prefix ~shards ~trace () with
      | Error e -> Alcotest.failf "recover: %s" e
      | Ok r ->
          Alcotest.(check bool) "replayed a suffix" true (r.Shard.Shard_engine.replayed > 0);
          let key (a : Vids.Alert.t) =
            Printf.sprintf "%s|%s|%d"
              (Vids.Alert.kind_to_string a.kind)
              a.subject (Dsim.Time.to_us a.at)
          in
          let sort l = List.sort String.compare (List.map key l) in
          Alcotest.(check (list string))
            "recovered alert log equals the uninterrupted run"
            (sort live.Shard.Shard_engine.alerts)
            (sort r.Shard.Shard_engine.outcome.Shard.Shard_engine.alerts);
          (* Per-shard engine states converge too (canonical digests). *)
          Array.iteri
            (fun i live_e ->
              let at =
                Dsim.Time.add
                  (List.fold_left
                     (fun acc (rc : Vids.Trace.record) -> Dsim.Time.max acc rc.at)
                     Dsim.Time.zero trace)
                  (Dsim.Time.of_sec 120.0)
              in
              Alcotest.(check string)
                (Printf.sprintf "shard %d digest" i)
                (Vids.Snapshot.digest ~at live_e)
                (Vids.Snapshot.digest ~at
                   r.Shard.Shard_engine.outcome.Shard.Shard_engine.engines.(i)))
            live.Shard.Shard_engine.engines)

let snapshot_keeps_backpressure () =
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create sched in
  Vids.Engine.add_backpressure_stalls engine 7;
  let snap = Vids.Snapshot.capture ~at:Dsim.Time.zero engine in
  match Vids.Snapshot.of_string (Vids.Snapshot.to_string snap) with
  | Error e -> Alcotest.fail e
  | Ok snap -> (
      match Vids.Snapshot.restore snap with
      | Error e -> Alcotest.fail e
      | Ok (_, restored) ->
          Alcotest.(check int) "stalls survive the round trip" 7
            (Vids.Engine.counters restored).Vids.Engine.backpressure_stalls)

(* ------------------------------------------------------------------ *)
(* Satellites: interning, quantiles, advance_to                        *)
(* ------------------------------------------------------------------ *)

let intern_basics () =
  let t = Vids.Intern.create () in
  let a = Vids.Intern.intern t "alpha" in
  let b = Vids.Intern.intern t "beta" in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check int) "stable" a (Vids.Intern.intern t "alpha");
  Alcotest.(check (option int)) "find" (Some b) (Vids.Intern.find t "beta");
  Alcotest.(check (option int)) "miss" None (Vids.Intern.find t "gamma");
  Alcotest.(check string) "name" "beta" (Vids.Intern.name t b);
  Alcotest.(check int) "count" 2 (Vids.Intern.count t);
  Alcotest.(check bool) "hash deterministic" true
    (Vids.Intern.hash "Call-ID-1" = Vids.Intern.hash "Call-ID-1");
  Alcotest.(check bool) "hash non-negative" true (Vids.Intern.hash "x" >= 0)

let quantiles_exact_and_merged () =
  let qt = Dsim.Stat.Quantiles.create () in
  for i = 1 to 100 do
    Dsim.Stat.Quantiles.add qt (float_of_int i)
  done;
  Alcotest.(check (float 1.0)) "p50" 50.0 (Dsim.Stat.Quantiles.p50 qt);
  Alcotest.(check (float 1.0)) "p95" 95.0 (Dsim.Stat.Quantiles.p95 qt);
  Alcotest.(check (float 1.0)) "p99" 99.0 (Dsim.Stat.Quantiles.p99 qt);
  let a = Dsim.Stat.Quantiles.create () and b = Dsim.Stat.Quantiles.create () in
  for i = 1 to 50 do
    Dsim.Stat.Quantiles.add a (float_of_int i);
    Dsim.Stat.Quantiles.add b (float_of_int (50 + i))
  done;
  let m = Dsim.Stat.Quantiles.merge a b in
  Alcotest.(check int) "merged count" 100 (Dsim.Stat.Quantiles.count m);
  Alcotest.(check (float 1.0)) "merged p50" 50.0 (Dsim.Stat.Quantiles.p50 m)

let advance_to_semantics () =
  let sched = Dsim.Scheduler.create () in
  let fired = ref [] in
  let note name () = fired := name :: !fired in
  ignore (Dsim.Scheduler.schedule_at sched (ms 10.) (note "a"));
  ignore (Dsim.Scheduler.schedule_at sched (ms 20.) (note "b"));
  ignore (Dsim.Scheduler.schedule_at sched (ms 30.) (note "c"));
  Dsim.Scheduler.advance_to sched (ms 20.);
  (* Strictly-earlier timers fire; the timer at exactly the target stays
     pending (same-instant packets beat timers). *)
  Alcotest.(check (list string)) "only earlier timers" [ "a" ] (List.rev !fired);
  Alcotest.(check time) "clock at target" (ms 20.) (Dsim.Scheduler.now sched);
  Dsim.Scheduler.run sched;
  Alcotest.(check (list string)) "rest fire in order" [ "a"; "b"; "c" ] (List.rev !fired)

(* ------------------------------------------------------------------ *)
(* Property: sequential vs sharded on generated traces                 *)
(* ------------------------------------------------------------------ *)

let trace_gen =
  QCheck.Gen.(
    pair (int_range 2 3) (list_size (int_range 5 40) (int_range 0 3)))

let prop_sharded_equals_sequential =
  q ~count:25 "sharded run = sequential run (partition-local alerts)"
    (QCheck.make
       ~print:(fun (n, shapes) ->
         Printf.sprintf "shards=%d shapes=[%s]" n
           (String.concat ";" (List.map string_of_int shapes)))
       trace_gen)
    (fun (shards, shapes) ->
      let trace = make_trace shapes in
      let sequential = Vids.Trace.replay trace in
      let outcome = Shard.Shard_engine.run_trace ~shards trace in
      let locals_equal =
        local_multiset (Vids.Engine.alerts sequential)
        = local_multiset outcome.Shard.Shard_engine.alerts
      in
      (* Every sequential cross-shard alert has an aggregated counterpart
         on the same subject within one detector window. *)
      let globals_covered =
        List.for_all
          (fun (s : Vids.Alert.t) ->
            let window =
              match s.kind with
              | Vids.Alert.Invite_flood -> Vids.Config.default.Vids.Config.invite_flood_window
              | _ -> Vids.Config.default.Vids.Config.drdos_window
            in
            List.exists
              (fun (a : Vids.Alert.t) ->
                a.kind = s.kind
                && String.equal a.subject s.subject
                && abs (Dsim.Time.to_us a.at - Dsim.Time.to_us s.at) <= Dsim.Time.to_us window)
              outcome.Shard.Shard_engine.alerts)
          (List.filter is_global (Vids.Engine.alerts sequential))
      in
      locals_equal && globals_covered)

let suite =
  [
    ( "shard",
      [
        Alcotest.test_case "spsc: fifo across wraparound" `Quick spsc_fifo;
        Alcotest.test_case "spsc: capacity rounding and stalls" `Quick spsc_capacity_and_stalls;
        Alcotest.test_case "spsc: cross-domain delivery in order" `Quick spsc_cross_domain;
        Alcotest.test_case "partition: call affinity" `Quick partition_call_affinity;
        Alcotest.test_case "partition: media follows its call" `Quick partition_media_follows_call;
        Alcotest.test_case "engine: 1..3 shards match sequential" `Quick shards_match_sequential;
        Alcotest.test_case "engine: 1 shard is exactly sequential" `Quick single_shard_is_sequential;
        Alcotest.test_case "engine: cross-shard flood aggregation" `Quick aggregated_flood_detected;
        Alcotest.test_case "engine: backpressure counted, nothing dropped" `Quick backpressure_counted;
        Alcotest.test_case "engine: per-packet latency quantiles" `Quick latency_measured;
        Alcotest.test_case "recovery: all shards converge" `Quick recovery_consistent;
        Alcotest.test_case "snapshot: backpressure survives round trip" `Quick
          snapshot_keeps_backpressure;
        Alcotest.test_case "intern: ids, find, hash" `Quick intern_basics;
        Alcotest.test_case "stat: quantiles exact and merged" `Quick quantiles_exact_and_merged;
        Alcotest.test_case "scheduler: advance_to fires strictly-earlier timers" `Quick
          advance_to_semantics;
        prop_sharded_equals_sequential;
      ] );
  ]
