(* Crash-safety tests: snapshot/journal codecs (round-trip + fuzz), the
   recovery convergence property (checkpoint ∘ crash ∘ recover ≡ no-crash),
   and the supervisor's restart/backoff/standby accounting. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let tc name f = Alcotest.test_case name `Quick f

let q ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let ms = Dsim.Time.of_ms
let sec = Dsim.Time.of_sec
let sip_addr host = Dsim.Addr.v host 5060

(* ------------------------------------------------------------------ *)
(* A dialog-rich scenario trace (mirrors bench/recovery.ml): full       *)
(* dialogs with media, abandoned INVITEs, calls left open — machines    *)
(* mid-state, armed timers and queued syncs at any cut point.           *)
(* ------------------------------------------------------------------ *)

let invite ~call_id ~port =
  let body =
    Printf.sprintf
      "v=0\r\no=alice 0 0 IN IP4 10.1.0.10\r\ns=-\r\nc=IN IP4 10.1.0.10\r\nt=0 0\r\nm=audio %d RTP/AVP 18\r\n"
      port
  in
  Printf.sprintf
    "INVITE sip:bob@b.example SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>\r\n\
     Call-ID: %s\r\n\
     CSeq: 1 INVITE\r\n\
     Contact: <sip:alice@10.1.0.10:5060>\r\n\
     Content-Type: application/sdp\r\n\
     Content-Length: %d\r\n\r\n%s"
    call_id call_id call_id (String.length body) body

let response ~call_id ~code ~cseq ~sdp ~port =
  let body =
    if sdp then
      Printf.sprintf
        "v=0\r\no=bob 0 0 IN IP4 10.2.0.10\r\ns=-\r\nc=IN IP4 10.2.0.10\r\nt=0 0\r\nm=audio %d RTP/AVP 18\r\n"
        port
    else ""
  in
  Printf.sprintf
    "SIP/2.0 %d X\r\nVia: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\nFrom: <sip:alice@a.example>;tag=ta-%s\r\nTo: <sip:bob@b.example>;tag=tb-%s\r\nCall-ID: %s\r\nCSeq: %s\r\n%sContent-Length: %d\r\n\r\n%s"
    code call_id call_id call_id call_id cseq
    (if sdp then "Content-Type: application/sdp\r\n" else "")
    (String.length body) body

let ack ~call_id =
  Printf.sprintf
    "ACK sip:bob@10.2.0.10 SIP/2.0\r\nVia: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKa-%s\r\nFrom: <sip:alice@a.example>;tag=ta-%s\r\nTo: <sip:bob@b.example>;tag=tb-%s\r\nCall-ID: %s\r\nCSeq: 1 ACK\r\n\r\n"
    call_id call_id call_id call_id

let bye ~call_id =
  Printf.sprintf
    "BYE sip:bob@10.2.0.10 SIP/2.0\r\nVia: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKb-%s\r\nFrom: <sip:alice@a.example>;tag=ta-%s\r\nTo: <sip:bob@b.example>;tag=tb-%s\r\nCall-ID: %s\r\nCSeq: 2 BYE\r\n\r\n"
    call_id call_id call_id call_id

let rtp_bytes ~seq =
  Rtp.Rtp_packet.encode
    (Rtp.Rtp_packet.make ~payload_type:18 ~sequence:seq ~timestamp:(Int32.of_int (160 * seq))
       ~ssrc:77l (String.make 20 'v'))

let make_trace ~calls =
  let records = ref [] in
  let add at src dst payload = records := { Vids.Trace.at; src; dst; payload } :: !records in
  let a_sig = sip_addr "10.1.0.2" and b_sig = sip_addr "10.2.0.2" in
  for i = 0 to calls - 1 do
    let call_id = Printf.sprintf "rec-%d" i in
    let t0 = ms (float_of_int (50 * i)) in
    let port = 16384 + (2 * (i mod 2048)) in
    let ( +& ) a b = Dsim.Time.add a b in
    add t0 a_sig b_sig (invite ~call_id ~port);
    if i mod 3 <> 2 then begin
      add (t0 +& ms 20.) b_sig a_sig (response ~call_id ~code:180 ~cseq:"1 INVITE" ~sdp:false ~port);
      add (t0 +& ms 40.) b_sig a_sig (response ~call_id ~code:200 ~cseq:"1 INVITE" ~sdp:true ~port);
      add (t0 +& ms 60.) a_sig b_sig (ack ~call_id);
      let media_src = Dsim.Addr.v "10.1.0.10" port in
      let media_dst = Dsim.Addr.v "10.2.0.10" port in
      for s = 0 to 3 do
        add (t0 +& ms (80. +. (20. *. float_of_int s))) media_src media_dst (rtp_bytes ~seq:s)
      done;
      if i mod 5 <> 4 then begin
        add (t0 +& ms 600.) a_sig b_sig (bye ~call_id);
        add (t0 +& ms 620.) b_sig a_sig (response ~call_id ~code:200 ~cseq:"2 BYE" ~sdp:false ~port)
      end
    end
  done;
  List.rev !records

let trace_horizon ~calls = ms (float_of_int ((50 * calls) + 700))

(* A sweep period chosen off the packet grid (multiples of 10 ms) so sweep
   firings never tie with packet arrivals. *)
let sweepy_config =
  { (Vids.Config.governed Vids.Config.default) with Vids.Config.sweep_interval = sec 7.3 }

(* ------------------------------------------------------------------ *)
(* Codec round-trips (qcheck)                                          *)
(* ------------------------------------------------------------------ *)

let any_byte = QCheck.Gen.(map Char.chr (int_range 0 255))
let bytes_gen = QCheck.Gen.(string_size ~gen:any_byte (int_range 0 48))

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Efsm.Value.Int i) int;
        map (fun s -> Efsm.Value.Str s) bytes_gen;
        map (fun b -> Efsm.Value.Bool b) bool;
        map (fun f -> Efsm.Value.Float f) float;
        map2 (fun h p -> Efsm.Value.Addr (h, p)) bytes_gen (int_range 0 65535);
        return Efsm.Value.Unset;
      ])

let value_arb = QCheck.make ~print:Efsm.Value.to_token value_gen

let value_token_roundtrip =
  q "value: of_token (to_token v) = v" value_arb (fun v ->
      match Efsm.Value.of_token (Efsm.Value.to_token v) with
      (* Compare via tokens so NaN floats (bit-exact round-trip, but
         NaN <> NaN) still count as equal. *)
      | Ok v' -> String.equal (Efsm.Value.to_token v') (Efsm.Value.to_token v)
      | Error _ -> false)

let host_gen =
  QCheck.Gen.(
    map
      (fun (a, b, c, d) -> Printf.sprintf "%d.%d.%d.%d" a b c d)
      (quad (int_range 0 255) (int_range 0 255) (int_range 0 255) (int_range 0 255)))

let trace_record_gen =
  QCheck.Gen.(
    map
      (fun (at, (sh, sp), (dh, dp), payload) ->
        {
          Vids.Trace.at = Dsim.Time.of_us at;
          src = Dsim.Addr.v sh sp;
          dst = Dsim.Addr.v dh dp;
          payload;
        })
      (quad (int_range 0 1_000_000_000)
         (pair host_gen (int_range 1 65535))
         (pair host_gen (int_range 1 65535))
         (string_size ~gen:any_byte (int_range 0 200))))

let trace_record_arb = QCheck.make ~print:Vids.Trace.record_to_line trace_record_gen

let trace_line_roundtrip =
  q "trace: record_of_line (record_to_line r) = r (arbitrary payload bytes)" trace_record_arb
    (fun r ->
      match Vids.Trace.record_of_line (Vids.Trace.record_to_line r) with
      | Ok r' -> r' = r
      | Error _ -> false)

let alert_gen =
  QCheck.Gen.(
    map
      (fun ((kind, severity, at), (subject, detail)) ->
        { Vids.Alert.kind; severity; at = Dsim.Time.of_us at; subject; detail })
      (pair
         (triple (oneofl Vids.Alert.all_kinds)
            (oneofl [ Vids.Alert.Info; Vids.Alert.Warning; Vids.Alert.Critical ])
            (int_range 0 1_000_000_000))
         (pair bytes_gen bytes_gen)))

let journal_entry_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun a -> Vids.Journal.Alert a) alert_gen;
        map
          (fun (at, subject, detail) ->
            Vids.Journal.Eviction { at = Dsim.Time.of_us at; subject; detail })
          (triple (int_range 0 1_000_000_000) bytes_gen bytes_gen);
        map
          (fun (at, seq) -> Vids.Journal.Checkpoint { at = Dsim.Time.of_us at; seq })
          (pair (int_range 0 1_000_000_000) (int_range 0 100_000));
      ])

let journal_entry_arb = QCheck.make ~print:Vids.Journal.entry_to_line journal_entry_gen

let journal_line_roundtrip =
  q "journal: entry_of_line (entry_to_line e) = e" journal_entry_arb (fun e ->
      match Vids.Journal.entry_of_line (Vids.Journal.entry_to_line e) with
      | Ok e' -> e' = e
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Snapshot round-trip on a real engine                                *)
(* ------------------------------------------------------------------ *)

let engine_at ~config ~calls cut =
  let trace = make_trace ~calls in
  Vids.Trace.replay_until ?config ~until:cut trace

let snapshot_text_roundtrip () =
  let sched, engine = engine_at ~config:None ~calls:12 (ms 450.) in
  let snap = Vids.Snapshot.capture ~seq:3 ~at:(Dsim.Scheduler.now sched) engine in
  let text = Vids.Snapshot.to_string snap in
  match Vids.Snapshot.of_string text with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok snap' ->
      Alcotest.(check string) "canonical text stable" text (Vids.Snapshot.to_string snap');
      check_int "seq preserved" 3 (Vids.Snapshot.seq snap');
      check "at preserved" true (Dsim.Time.equal (Vids.Snapshot.at snap') (ms 450.))

let snapshot_restore_digest () =
  let sched, engine = engine_at ~config:None ~calls:12 (ms 450.) in
  let at = Dsim.Scheduler.now sched in
  let original = Vids.Snapshot.digest ~at engine in
  let snap = Vids.Snapshot.capture ~seq:1 ~at engine in
  match Vids.Snapshot.restore snap with
  | Error e -> Alcotest.failf "restore failed: %s" e
  | Ok (sched', engine') ->
      check "clock restored" true (Dsim.Time.equal (Dsim.Scheduler.now sched') at);
      Alcotest.(check string) "restored digest equal" original
        (Vids.Snapshot.digest ~at engine')

(* ------------------------------------------------------------------ *)
(* The convergence property: checkpoint ∘ crash ∘ recover ≡ no-crash   *)
(* ------------------------------------------------------------------ *)

let converges ~governed ~calls ~frac =
  let config = if governed then Some sweepy_config else None in
  let trace = make_trace ~calls in
  let horizon = trace_horizon ~calls in
  let cut =
    Dsim.Time.of_us (max 1 (int_of_float (frac *. float_of_int (Dsim.Time.to_us horizon))))
  in
  let _, straight = Vids.Trace.replay_until ?config ~until:horizon trace in
  let reference = Vids.Snapshot.digest ~at:horizon straight in
  let sched, engine = Vids.Trace.replay_until ?config ~until:cut trace in
  let snap = Vids.Snapshot.capture ~seq:1 ~at:(Dsim.Scheduler.now sched) engine in
  (* Through the wire format, as a real crash would read it. *)
  match Vids.Snapshot.of_string (Vids.Snapshot.to_string snap) with
  | Error e -> Alcotest.failf "checkpoint round-trip failed: %s" e
  | Ok snap -> (
      match Vids.Recovery.recover ?config ~trace ~until:horizon snap with
      | Error e -> Alcotest.failf "recovery failed: %s" e
      | Ok outcome ->
          String.equal reference
            (Vids.Snapshot.digest ~at:horizon outcome.Vids.Recovery.engine))

let convergence_prop =
  q ~count:12 "recovery: checkpoint ∘ crash ∘ recover ≡ no-crash"
    (QCheck.make
       ~print:(fun (calls, frac, governed) ->
         Printf.sprintf "calls=%d frac=%.2f governed=%b" calls frac governed)
       QCheck.Gen.(
         triple (int_range 6 18) (float_range 0.05 0.95) bool))
    (fun (calls, frac, governed) -> converges ~governed ~calls ~frac)

let convergence_fixed () =
  List.iter
    (fun (governed, frac) ->
      check
        (Printf.sprintf "converges governed=%b frac=%.2f" governed frac)
        true
        (converges ~governed ~calls:15 ~frac))
    [ (false, 0.3); (false, 0.85); (true, 0.3); (true, 0.85) ]

(* ------------------------------------------------------------------ *)
(* Corruption fuzzing: damaged snapshots are rejected, never escape    *)
(* ------------------------------------------------------------------ *)

let base_snapshot_text =
  lazy
    (let sched, engine = engine_at ~config:None ~calls:8 (ms 380.) in
     Vids.Snapshot.to_string
       (Vids.Snapshot.capture ~seq:2 ~at:(Dsim.Scheduler.now sched) engine))

type mutation = Truncate | Flip | Insert | Delete_line

let mutate text mutation pos byte =
  let n = String.length text in
  if n = 0 then text
  else
    let pos = pos mod n in
    match mutation with
    | Truncate -> String.sub text 0 pos
    | Flip ->
        let b = Bytes.of_string text in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor max 1 (byte land 0xff)));
        Bytes.to_string b
    | Insert ->
        String.sub text 0 pos ^ Printf.sprintf "\ngarbage %d\n" byte
        ^ String.sub text pos (n - pos)
    | Delete_line -> (
        match String.split_on_char '\n' text with
        | lines ->
            let k = pos mod max 1 (List.length lines) in
            String.concat "\n" (List.filteri (fun i _ -> i <> k) lines))

let snapshot_fuzz =
  q ~count:400 "snapshot: corruption is rejected, never an exception"
    (QCheck.make
       ~print:(fun (m, pos, byte) ->
         Printf.sprintf "%s pos=%d byte=%d"
           (match m with
           | Truncate -> "truncate"
           | Flip -> "flip"
           | Insert -> "insert"
           | Delete_line -> "delete-line")
           pos byte)
       QCheck.Gen.(
         triple (oneofl [ Truncate; Flip; Insert; Delete_line ]) (int_range 0 5_000_000)
           (int_range 0 255)))
    (fun (m, pos, byte) ->
      let text = mutate (Lazy.force base_snapshot_text) m pos byte in
      match Vids.Snapshot.of_string text with
      | Error _ -> true
      | Ok snap -> (
          (* The mutation dodged the CRC (e.g. truncated to just the header,
             or deleted nothing): restoring must still be total. *)
          match Vids.Snapshot.restore snap with Ok _ -> true | Error _ -> true)
      | exception _ -> false)

let snapshot_version_skew () =
  let text = Lazy.force base_snapshot_text in
  let skewed =
    "VIDS-SNAPSHOT 99" ^ String.sub text 15 (String.length text - 15)
  in
  match Vids.Snapshot.of_string skewed with
  | Ok _ -> Alcotest.fail "version 99 accepted"
  | Error e ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      check "mentions version" true (contains e "version")

(* ------------------------------------------------------------------ *)
(* Lenient loaders                                                     *)
(* ------------------------------------------------------------------ *)

let with_temp_file content f =
  let path = Filename.temp_file "vids-test" ".tmp" in
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc;
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let journal_lenient_load () =
  let e1 = Vids.Journal.Checkpoint { at = ms 10.; seq = 1 } in
  let e2 =
    Vids.Journal.Alert
      (Vids.Alert.make ~kind:Vids.Alert.Bye_dos ~at:(ms 20.) ~subject:"c-1" "teardown")
  in
  let e3 = Vids.Journal.Eviction { at = ms 30.; subject = "c-2"; detail = "cap" } in
  let good = List.map Vids.Journal.entry_to_line [ e1; e2; e3 ] in
  let torn = String.sub (Vids.Journal.entry_to_line e3) 0 12 in
  let content = String.concat "\n" (good @ [ "not a journal line at all"; torn ]) ^ "\n" in
  with_temp_file content (fun path ->
      match Vids.Journal.load_lenient path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok (entries, skipped) ->
          check_int "three entries survive" 3 (List.length entries);
          check "entries decode intact" true (entries = [ e1; e2; e3 ]);
          check_int "two lines skipped" 2 (List.length skipped);
          check "skips carry line numbers" true (List.map fst skipped = [ 4; 5 ]))

let journal_suffix_split () =
  let a at subject =
    Vids.Journal.Alert
      (Vids.Alert.make ~kind:Vids.Alert.Media_spam ~at ~subject "spam")
  in
  let entries =
    [
      a (ms 5.) "s-1";
      Vids.Journal.Checkpoint { at = ms 10.; seq = 1 };
      a (ms 15.) "s-2";
      Vids.Journal.Checkpoint { at = ms 20.; seq = 2 };
      a (ms 25.) "s-3";
    ]
  in
  check_int "after marker 2" 1 (List.length (Vids.Journal.suffix_after ~seq:2 ~at:(ms 20.) entries));
  check_int "after marker 1" 3 (List.length (Vids.Journal.suffix_after ~seq:1 ~at:(ms 10.) entries));
  (* No marker: timestamp fallback. *)
  check_int "timestamp fallback" 1
    (List.length (Vids.Journal.suffix_after ~seq:99 ~at:(ms 20.) entries))

let trace_lenient_load () =
  let r1 =
    { Vids.Trace.at = ms 1.; src = sip_addr "10.0.0.1"; dst = sip_addr "10.0.0.2"; payload = "x" }
  in
  let r2 = { r1 with Vids.Trace.at = ms 2.; payload = "line\nwith\nnewlines\x00\xff" } in
  let content =
    String.concat "\n"
      [ Vids.Trace.record_to_line r1; "garbage here"; Vids.Trace.record_to_line r2; "1 2 3 zz" ]
    ^ "\n"
  in
  with_temp_file content (fun path ->
      let ic = open_in_bin path in
      let records, skipped = Vids.Trace.load_lenient ic in
      close_in ic;
      check "good records kept" true (records = [ r1; r2 ]);
      check "bad lines reported" true (List.map fst skipped = [ 2; 4 ]))

(* ------------------------------------------------------------------ *)
(* Files: rotation and fallback                                        *)
(* ------------------------------------------------------------------ *)

let rotation_and_fallback () =
  let path = Filename.temp_file "vids-ckpt" ".snap" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Vids.Snapshot.previous_path path ])
    (fun () ->
      let calls = 10 in
      let trace = make_trace ~calls in
      let horizon = trace_horizon ~calls in
      let sched, engine = Vids.Trace.replay_until ~until:(ms 300.) trace in
      Vids.Snapshot.save ~path
        (Vids.Snapshot.capture ~seq:1 ~at:(Dsim.Scheduler.now sched) engine);
      let sched2, engine2 = Vids.Trace.replay_until ~until:(ms 500.) trace in
      Vids.Snapshot.save ~path
        (Vids.Snapshot.capture ~seq:2 ~at:(Dsim.Scheduler.now sched2) engine2);
      check "previous rotated" true (Sys.file_exists (Vids.Snapshot.previous_path path));
      (* Corrupt the primary: recovery must fall back to the rotated copy
         and still converge with an uninterrupted run from that instant. *)
      let oc = open_out_bin path in
      output_string oc "VIDS-SNAPSHOT 1 2 500000\ntotally torn";
      close_out oc;
      match Vids.Recovery.recover_files ~trace_path:"/nonexistent/trace" ~until:horizon
              ~snapshot_path:path ()
      with
      | Error e -> Alcotest.failf "fallback recovery failed: %s" e
      | Ok fr ->
          check "used fallback" true fr.Vids.Recovery.used_fallback;
          check_int "fallback is checkpoint #1" 1
            fr.Vids.Recovery.outcome.Vids.Recovery.snapshot_seq;
          check_int "primary rejected with reason" 1 (List.length fr.Vids.Recovery.rejected);
          (* Both copies gone: recovery reports, never raises. *)
          let oc = open_out_bin (Vids.Snapshot.previous_path path) in
          output_string oc "also torn";
          close_out oc;
          (match Vids.Recovery.recover_files ~snapshot_path:path () with
          | Ok _ -> Alcotest.fail "recovered from two corrupt snapshots"
          | Error e -> check "diagnostic names both files" true (String.length e > 0)))

(* ------------------------------------------------------------------ *)
(* Journal merge semantics                                             *)
(* ------------------------------------------------------------------ *)

let merge_idempotent () =
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create sched in
  let alert =
    Vids.Alert.make ~kind:Vids.Alert.Invite_flood ~at:(ms 5.) ~subject:"sip:bob@b.example"
      "INVITE flood"
  in
  Vids.Engine.merge_journal_alert engine alert;
  Vids.Engine.merge_journal_alert engine alert;
  check_int "merged exactly once" 1 (List.length (Vids.Engine.alerts engine));
  check_int "no suppression counted" 0 (Vids.Engine.counters engine).Vids.Engine.alerts_suppressed

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let base_policy =
  {
    Vids.Supervisor.default_policy with
    Vids.Supervisor.checkpoint_every = ms 500.;
    backoff_initial = ms 200.;
  }

let supervised_clean_run () =
  let trace = make_trace ~calls:20 in
  let report = Vids.Supervisor.run ~policy:base_policy ~trace ~kill_at:[] () in
  check_int "no crashes" 0 report.Vids.Supervisor.crashes;
  check_int "no packets missed" 0 report.Vids.Supervisor.packets_missed;
  check "checkpoints taken" true (report.Vids.Supervisor.checkpoints > 1);
  check "not given up" true (not report.Vids.Supervisor.gave_up)

let supervised_crash_and_recover () =
  let trace = make_trace ~calls:20 in
  let report = Vids.Supervisor.run ~policy:base_policy ~trace ~kill_at:[ ms 433. ] () in
  check_int "one crash" 1 report.Vids.Supervisor.crashes;
  check_int "one restart" 1 report.Vids.Supervisor.restarts;
  check "packets missed during outage" true (report.Vids.Supervisor.packets_missed > 0);
  check "downtime accounted" true
    (Dsim.Time.( >= ) report.Vids.Supervisor.downtime_total (ms 200.));
  (* The outage is on the recovered engine's record, surfaced by reports. *)
  check_int "downtime interval recorded" 1
    (List.length (Vids.Engine.downtime_intervals report.Vids.Supervisor.engine));
  (* Exactly-once: journal merge + replay never duplicates an alert. *)
  let alerts = Vids.Engine.alerts report.Vids.Supervisor.engine in
  let keys = List.map Vids.Alert.dedup_key alerts in
  check_int "alert log free of duplicates" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let supervised_restart_budget () =
  let trace = make_trace ~calls:20 in
  let policy = { base_policy with Vids.Supervisor.max_restarts = 2 } in
  (* The second outage runs 700–1100 ms (backoff doubled to 400 ms), so the
     third kill must land after it — kills inside an outage are absorbed. *)
  let kills = [ ms 433.; ms 700.; ms 1150. ] in
  let report = Vids.Supervisor.run ~policy ~trace ~kill_at:kills () in
  check "gave up" true report.Vids.Supervisor.gave_up;
  check_int "budget spent" 2 report.Vids.Supervisor.restarts;
  check "remaining trace missed" true (report.Vids.Supervisor.packets_missed > 0)

(* Restart-budget boundary: a budget of 3 must survive exactly three
   crashes — the third restart is the last allowed one, and only a fourth
   crash exhausts it. *)
let supervised_budget_exact_edge () =
  let trace = make_trace ~calls:20 in
  let policy = { base_policy with Vids.Supervisor.max_restarts = 3 } in
  (* Outages: 433–633 (200 ms), 933–1333 (doubled), 1433–2233 (doubled
     again) — each later kill lands after the previous restart. *)
  let at_budget =
    Vids.Supervisor.run ~policy ~trace ~kill_at:[ ms 433.; ms 933.; ms 1433. ] ()
  in
  check "exactly at budget: still alive" true (not at_budget.Vids.Supervisor.gave_up);
  check_int "all three restarts spent" 3 at_budget.Vids.Supervisor.restarts;
  check_int "three crashes" 3 at_budget.Vids.Supervisor.crashes;
  let over_budget =
    Vids.Supervisor.run ~policy ~trace ~kill_at:[ ms 433.; ms 933.; ms 1433.; ms 2333. ] ()
  in
  check "one past budget: gave up" true over_budget.Vids.Supervisor.gave_up;
  check_int "restarts never exceed the budget" 3 over_budget.Vids.Supervisor.restarts;
  check_int "the fourth crash is final" 4 over_budget.Vids.Supervisor.crashes

(* Backoff cap: an absurd growth factor (1e200 overflows to infinity by
   the third consecutive crash) must clamp at the cap instead of stalling
   the sensor for the rest of the horizon — the downtime ledger comes out
   exact. *)
let supervised_backoff_cap () =
  (* 30 calls put the horizon (last record + drain) past 3 s, so even the
     outage of the last kill at 2150 ms runs its full 400 ms instead of
     being clipped by the end of the run. *)
  let trace = make_trace ~calls:30 in
  let policy =
    {
      base_policy with
      Vids.Supervisor.max_restarts = 200;
      (* No checkpoint inside the horizon, so the consecutive-crash
         streak never resets and the exponent keeps growing. *)
      checkpoint_every = sec 1000.;
      backoff_factor = 1e200;
      backoff_cap = ms 400.;
    }
  in
  let kills = [ ms 100.; ms 350.; ms 800.; ms 1250.; ms 1700.; ms 2150. ] in
  let report = Vids.Supervisor.run ~policy ~trace ~kill_at:kills () in
  check "never gave up" true (not report.Vids.Supervisor.gave_up);
  check_int "every kill produced a restart" 6 report.Vids.Supervisor.restarts;
  (* First outage at the initial backoff, the five others clamped at the
     cap: 200 + 5 x 400 ms, to the microsecond. *)
  check "downtime exactly 200 + 5*400 ms" true
    (Dsim.Time.equal report.Vids.Supervisor.downtime_total (ms 2200.))

(* ------------------------------------------------------------------ *)
(* Durable-file corruption fuzz                                        *)
(* ------------------------------------------------------------------ *)

(* Random single-point corruption of an append-only file: a byte flip, a
   truncation, or a garbage splice.  Loaders must never raise, and every
   line wholly before the corruption point must come back verbatim — the
   CRC-armored prefix is the recovery contract. *)

let corruption_gen =
  QCheck.Gen.(
    quad (int_range 0 2) (int_range 0 10_000) any_byte
      (string_size ~gen:any_byte (int_range 0 64)))

let corruption_arb =
  QCheck.make
    ~print:(fun (mode, pos, c, junk) ->
      Printf.sprintf "mode=%d pos=%d byte=%02x junk=%S" mode pos (Char.code c) junk)
    corruption_gen

(* Applies one corruption to [lines] rendered as a file; returns the
   mangled content and how many leading lines are untouched. *)
let corrupt_lines lines (mode, pos, c, junk) =
  let original = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
  let len = String.length original in
  let pos = if len = 0 then 0 else pos mod len in
  let corrupted =
    match mode with
    | 0 ->
        let b = Bytes.of_string original in
        let c = if Bytes.get b pos = c then Char.chr ((Char.code c + 1) land 0xff) else c in
        Bytes.set b pos c;
        Bytes.to_string b
    | 1 -> String.sub original 0 pos
    | _ -> String.sub original 0 pos ^ junk ^ String.sub original pos (len - pos)
  in
  let intact = ref 0 in
  let off = ref 0 in
  List.iter
    (fun l ->
      (* The line plus its newline must sit strictly before the
         corruption point. *)
      if !off + String.length l + 1 <= pos then incr intact;
      off := !off + String.length l + 1)
    lines;
  (corrupted, !intact)

let with_corrupt_file lines op f =
  let corrupted, intact = corrupt_lines lines op in
  let path = Filename.temp_file "vids_corrupt" ".log" in
  let oc = open_out_bin path in
  output_string oc corrupted;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path intact)

let prefix_matches rendered_loaded lines intact =
  List.length rendered_loaded >= intact
  && List.for_all2
       (fun a b -> String.equal a b)
       (List.filteri (fun i _ -> i < intact) rendered_loaded)
       (List.filteri (fun i _ -> i < intact) lines)

let journal_fixture_lines =
  let alert kind at subject msg = Vids.Journal.Alert (Vids.Alert.make ~kind ~at:(ms at) ~subject msg) in
  List.map Vids.Journal.entry_to_line
    [
      alert Vids.Alert.Invite_flood 5. "sip:bob@b.example" "INVITE flood";
      Vids.Journal.Eviction { at = ms 7.; subject = "call-0"; detail = "ttl expired" };
      alert Vids.Alert.Spec_deviation 12. "10.1.0.2:5060" "unparseable SIP";
      Vids.Journal.Checkpoint { at = ms 15.; seq = 1 };
      alert Vids.Alert.Invite_flood 21. "sip:carol@b.example" "INVITE flood";
      Vids.Journal.Eviction { at = ms 30.; subject = "call-3"; detail = "bye" };
      Vids.Journal.Checkpoint { at = ms 40.; seq = 2 };
      alert Vids.Alert.Spec_deviation 44. "10.9.0.9:5060" "teardown out of order";
    ]

let journal_corruption_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"journal: corruption never raises, keeps CRC-valid prefix"
       ~count:300 corruption_arb (fun op ->
         with_corrupt_file journal_fixture_lines op (fun path intact ->
             match Vids.Journal.load_lenient path with
             | Error e -> QCheck.Test.fail_reportf "load refused to open: %s" e
             | Ok (entries, _bad) ->
                 prefix_matches
                   (List.map Vids.Journal.entry_to_line entries)
                   journal_fixture_lines intact)))

let trace_fixture_lines = List.map Vids.Trace.record_to_line (make_trace ~calls:4)

let trace_corruption_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"trace: corruption never raises, keeps CRC-valid prefix"
       ~count:300 corruption_arb (fun op ->
         with_corrupt_file trace_fixture_lines op (fun path intact ->
             let ic = open_in_bin path in
             let records, _bad = Vids.Trace.load_lenient ic in
             close_in ic;
             prefix_matches
               (List.map Vids.Trace.record_to_line records)
               trace_fixture_lines intact)))

let supervised_warm_standby () =
  let trace = make_trace ~calls:20 in
  let kills = [ ms 733.; ms 1433. ] in
  let cold = Vids.Supervisor.run ~policy:base_policy ~trace ~kill_at:kills () in
  let warm_policy =
    { base_policy with Vids.Supervisor.warm_standby = true; failover_delay = ms 20. }
  in
  let warm = Vids.Supervisor.run ~policy:warm_policy ~trace ~kill_at:kills () in
  check "standby promoted" true (warm.Vids.Supervisor.standby_promotions >= 1);
  check "warm misses no more than cold" true
    (warm.Vids.Supervisor.packets_missed <= cold.Vids.Supervisor.packets_missed);
  check "warm downtime below cold" true
    (Dsim.Time.( < ) warm.Vids.Supervisor.downtime_total cold.Vids.Supervisor.downtime_total)

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "recovery",
      [
        value_token_roundtrip;
        trace_line_roundtrip;
        journal_line_roundtrip;
        tc "snapshot text round-trip" snapshot_text_roundtrip;
        tc "snapshot restore digest" snapshot_restore_digest;
        convergence_prop;
        tc "convergence at fixed cuts" convergence_fixed;
        snapshot_fuzz;
        tc "snapshot version skew rejected" snapshot_version_skew;
        tc "journal lenient load" journal_lenient_load;
        tc "journal suffix split" journal_suffix_split;
        tc "trace lenient load" trace_lenient_load;
        tc "checkpoint rotation and fallback" rotation_and_fallback;
        tc "journal merge idempotent" merge_idempotent;
        tc "supervised clean run" supervised_clean_run;
        tc "supervised crash and recover" supervised_crash_and_recover;
        tc "supervised restart budget" supervised_restart_budget;
        tc "supervised budget exact edge" supervised_budget_exact_edge;
        tc "supervised backoff cap" supervised_backoff_cap;
        journal_corruption_fuzz;
        trace_corruption_fuzz;
        tc "supervised warm standby" supervised_warm_standby;
      ] );
  ]
