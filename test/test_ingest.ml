(* Live-ingestion tests: the pcap codec as a hostile-input boundary, the
   shed queue's watermark discipline, per-source quarantine, backoff
   arithmetic, the UDP listener over a real loopback socket, and the
   daemon's convergence contract — a live run digests equal to an offline
   replay of the same capture, and a SIGTERM mid-ingest loses no alert
   already earned. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

let q ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let ms = Dsim.Time.of_ms

let tmp_path =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vids_ingest_%d_%d%s" (Unix.getpid ()) !n suffix)

let write_bytes path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_bytes path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let record ~at ~src ~dst payload = { Vids.Trace.at; src; dst; payload }

let same_record (a : Vids.Trace.record) (b : Vids.Trace.record) =
  Dsim.Time.equal a.Vids.Trace.at b.Vids.Trace.at
  && Dsim.Addr.equal a.Vids.Trace.src b.Vids.Trace.src
  && Dsim.Addr.equal a.Vids.Trace.dst b.Vids.Trace.dst
  && String.equal a.Vids.Trace.payload b.Vids.Trace.payload

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let manual_clock () =
  let c = Ingest.Clock.manual ~start:5.0 () in
  check "manual start" true (c.Ingest.Clock.now () = 5.0);
  c.Ingest.Clock.sleep 1.5;
  check "sleep advances" true (c.Ingest.Clock.now () = 6.5);
  Ingest.Clock.advance c 0.5;
  check "advance advances" true (c.Ingest.Clock.now () = 7.0);
  c.Ingest.Clock.sleep (-3.0);
  check "negative sleep is a no-op" true (c.Ingest.Clock.now () = 7.0)

let system_clock_monotone () =
  let c = Ingest.Clock.system () in
  let a = c.Ingest.Clock.now () in
  let b = c.Ingest.Clock.now () in
  check "monotone" true (b >= a);
  check "system clock cannot be advanced" true
    (match Ingest.Clock.advance c 1.0 with
    | exception Invalid_argument _ -> true
    | () -> false)

(* ------------------------------------------------------------------ *)
(* Pcap                                                                *)
(* ------------------------------------------------------------------ *)

let pcap_roundtrip () =
  let records = Test_recovery.make_trace ~calls:6 in
  let path = tmp_path ".pcap" in
  Ingest.Pcap.write_file path records;
  match Ingest.Pcap.read_file path with
  | Error e -> Alcotest.failf "read_file: %s" e
  | Ok (records', skipped) ->
      Sys.remove path;
      check_int "no skipped frames" 0 (List.length skipped);
      check_int "same count" (List.length records) (List.length records');
      List.iter2
        (fun a b -> check "record preserved" true (same_record a b))
        records records'

let pcap_nonip_hosts () =
  let src = Dsim.Addr.v "nodeA" 5060 and dst = Dsim.Addr.v "nodeB" 5060 in
  let records =
    [ record ~at:(ms 1.) ~src ~dst "OPTIONS sip:x SIP/2.0\r\n\r\n";
      record ~at:(ms 2.) ~src ~dst "second" ]
  in
  let path = tmp_path ".pcap" in
  Ingest.Pcap.write_file path records;
  match Ingest.Pcap.read_file path with
  | Error e -> Alcotest.failf "read_file: %s" e
  | Ok (records', _) ->
      Sys.remove path;
      check_int "both read" 2 (List.length records');
      let r0 = List.nth records' 0 and r1 = List.nth records' 1 in
      (* Host strings are not preserved, but the mapping is deterministic
         and lands in the RFC 2544 benchmark range. *)
      check_str "same mapped host" (Dsim.Addr.host r0.Vids.Trace.src)
        (Dsim.Addr.host r1.Vids.Trace.src);
      check "mapped into 198.18/15" true
        (String.length (Dsim.Addr.host r0.Vids.Trace.src) >= 7
        && String.sub (Dsim.Addr.host r0.Vids.Trace.src) 0 7 = "198.18."
           || String.sub (Dsim.Addr.host r0.Vids.Trace.src) 0 7 = "198.19.");
      check_int "port preserved" 5060 (Dsim.Addr.port r0.Vids.Trace.src);
      check_str "payload preserved" "second" r1.Vids.Trace.payload;
      check "distinct hosts stay distinct" true
        (Dsim.Addr.host r0.Vids.Trace.src <> Dsim.Addr.host r0.Vids.Trace.dst)

let pcap_truncation_fuzz =
  let records = Test_recovery.make_trace ~calls:3 in
  let path = tmp_path ".pcap" in
  Ingest.Pcap.write_file path records;
  let full = read_bytes path in
  Sys.remove path;
  let n = List.length records in
  q ~count:120 "pcap: truncation never raises, yields a record prefix"
    QCheck.(int_range 0 (String.length full))
    (fun cut ->
      let path = tmp_path ".pcap" in
      write_bytes path (String.sub full 0 cut);
      let ok =
        match Ingest.Pcap.read_file path with
        | Error _ -> cut < 24 (* only a torn global header is fatal *)
        | Ok (records', _) ->
            List.length records' <= n
            && List.for_all2 same_record records'
                 (List.filteri (fun i _ -> i < List.length records') records)
      in
      Sys.remove path;
      ok)

let pcap_garbage_fuzz =
  q ~count:120 "pcap: random bytes never raise"
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 512) QCheck.Gen.char)
    (fun junk ->
      let path = tmp_path ".pcap" in
      write_bytes path junk;
      let ok =
        match Ingest.Pcap.read_file path with Error _ -> true | Ok _ -> true
      in
      Sys.remove path;
      ok)

(* ------------------------------------------------------------------ *)
(* Shed queue                                                          *)
(* ------------------------------------------------------------------ *)

let addr = Dsim.Addr.v "10.0.0.1" 5060

let sip_rec i = record ~at:(ms (float_of_int i)) ~src:addr ~dst:addr "INVITE x"
let rtp_rec i = record ~at:(ms (float_of_int i)) ~src:addr ~dst:addr "\x80\x12binary"

let shed_queue_watermarks () =
  let t = Ingest.Shed_queue.create ~high_water:4 ~capacity:6 () in
  for i = 1 to 4 do
    check "below high water everything enters" true
      (Ingest.Shed_queue.push t (rtp_rec i) = Ingest.Shed_queue.Enqueued)
  done;
  (* Above high water media is refused, signaling still admitted. *)
  check "media shed above high water" true
    (Ingest.Shed_queue.push t (rtp_rec 5) = Ingest.Shed_queue.Shed_media);
  check "signaling admitted above high water" true
    (Ingest.Shed_queue.push t (sip_rec 6) = Ingest.Shed_queue.Enqueued);
  check "signaling admitted at last slot" true
    (Ingest.Shed_queue.push t (sip_rec 7) = Ingest.Shed_queue.Enqueued);
  (* At capacity the oldest is displaced so the newcomer fits. *)
  check "oldest displaced at capacity" true
    (Ingest.Shed_queue.push t (sip_rec 8) = Ingest.Shed_queue.Displaced_oldest);
  check_int "depth stays at capacity" 6 (Ingest.Shed_queue.length t);
  (match Ingest.Shed_queue.pop t with
  | Some r -> check "head is record 2 (record 1 displaced)" true (same_record r (rtp_rec 2))
  | None -> Alcotest.fail "queue empty");
  let s = Ingest.Shed_queue.stats t in
  check_int "enqueued" 7 s.Ingest.Shed_queue.enqueued;
  check_int "shed media" 1 s.Ingest.Shed_queue.shed_media;
  check_int "shed oldest" 1 s.Ingest.Shed_queue.shed_oldest;
  check_int "peak depth" 6 s.Ingest.Shed_queue.peak_depth

let shed_queue_classifier () =
  check "SIP request is signaling" true (Ingest.Shed_queue.is_signaling "INVITE sip:x");
  check "SIP response is signaling" true (Ingest.Shed_queue.is_signaling "SIP/2.0 200 OK");
  check "RTP is media" false (Ingest.Shed_queue.is_signaling "\x80\x12\x00\x01");
  check "empty is media" false (Ingest.Shed_queue.is_signaling "")

(* ------------------------------------------------------------------ *)
(* Quarantine                                                          *)
(* ------------------------------------------------------------------ *)

let srcp p = Dsim.Addr.v "203.0.113.9" p

let quarantine_threshold_and_ttl () =
  let t = Ingest.Quarantine.create ~threshold:3 ~window_s:10.0 ~ttl_s:5.0 () in
  let src = srcp 1000 in
  check "1st error below threshold" false (Ingest.Quarantine.note_error t ~now:0.0 ~src);
  check "2nd error below threshold" false (Ingest.Quarantine.note_error t ~now:0.1 ~src);
  check "not blocked yet" false (Ingest.Quarantine.blocked t ~now:0.2 ~src);
  check "3rd error trips" true (Ingest.Quarantine.note_error t ~now:0.2 ~src);
  check "blocked" true (Ingest.Quarantine.blocked t ~now:0.3 ~src);
  (* Neighbouring ports on the same host are untouched. *)
  check "same host, other port unaffected" false
    (Ingest.Quarantine.blocked t ~now:0.3 ~src:(srcp 1001));
  check "still blocked before ttl" true (Ingest.Quarantine.blocked t ~now:5.1 ~src);
  check "released after ttl" false (Ingest.Quarantine.blocked t ~now:5.3 ~src);
  let s = Ingest.Quarantine.stats t ~now:6.0 in
  check_int "errors charged" 3 s.Ingest.Quarantine.errors;
  check_int "one quarantine" 1 s.Ingest.Quarantine.quarantines;
  check_int "drops counted" 2 s.Ingest.Quarantine.dropped;
  check_int "none active after ttl" 0 s.Ingest.Quarantine.active

let quarantine_window_slides () =
  let t = Ingest.Quarantine.create ~threshold:3 ~window_s:1.0 ~ttl_s:5.0 () in
  let src = srcp 2000 in
  (* Errors spread wider than the window never accumulate to the
     threshold. *)
  check "t=0" false (Ingest.Quarantine.note_error t ~now:0.0 ~src);
  check "t=2" false (Ingest.Quarantine.note_error t ~now:2.0 ~src);
  check "t=4" false (Ingest.Quarantine.note_error t ~now:4.0 ~src);
  check "t=6" false (Ingest.Quarantine.note_error t ~now:6.0 ~src);
  check "never quarantined" false (Ingest.Quarantine.blocked t ~now:6.1 ~src)

let quarantine_lru_bound () =
  let t = Ingest.Quarantine.create ~threshold:2 ~window_s:100.0 ~ttl_s:100.0 ~max_sources:4 () in
  (* Many more distinct sources than the table admits: no growth beyond
     the cap, no exception — the attacker cycling ports cannot turn the
     defense into a leak. *)
  for p = 1 to 100 do
    ignore (Ingest.Quarantine.note_error t ~now:(float_of_int p) ~src:(srcp p))
  done;
  (* A source whose state was LRU-evicted restarts from zero. *)
  check "evicted source needs a full threshold again" false
    (Ingest.Quarantine.note_error t ~now:101.0 ~src:(srcp 1))

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)
(* ------------------------------------------------------------------ *)

let backoff_doubles_caps_budgets () =
  let b = Ingest.Backoff.create ~initial_s:0.1 ~factor:2.0 ~cap_s:0.5 ~budget:5 () in
  let next () = Ingest.Backoff.next b in
  check "1st 0.1" true (next () = Some 0.1);
  check "2nd 0.2" true (next () = Some 0.2);
  check "3rd 0.4" true (next () = Some 0.4);
  check "4th capped" true (next () = Some 0.5);
  check "5th capped" true (next () = Some 0.5);
  check "budget spent" true (next () = None);
  check "stays spent" true (next () = None);
  check_int "retries counted" 5 (Ingest.Backoff.retries b);
  Ingest.Backoff.reset b;
  check_int "reset clears retries" 0 (Ingest.Backoff.retries b);
  check "reset restores delay and budget" true (next () = Some 0.1)

let backoff_no_overflow () =
  let b = Ingest.Backoff.create ~initial_s:0.1 ~factor:1e30 ~cap_s:7.0 ~budget:1000 () in
  for _ = 1 to 999 do
    match Ingest.Backoff.next b with
    | Some d -> check "always within cap" true (d > 0.0 && d <= 7.0)
    | None -> Alcotest.fail "budget exhausted early"
  done

(* ------------------------------------------------------------------ *)
(* UDP source (real loopback sockets)                                  *)
(* ------------------------------------------------------------------ *)

let with_sender f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) (fun () -> f fd)

let sendto fd (addr : Dsim.Addr.t) payload =
  let sockaddr =
    Unix.ADDR_INET (Unix.inet_addr_of_string (Dsim.Addr.host addr), Dsim.Addr.port addr)
  in
  ignore (Unix.sendto fd (Bytes.of_string payload) 0 (String.length payload) [] sockaddr)

let rec drain_udp u ~clock ~tries acc =
  let got = Ingest.Udp_source.recv_batch u ~clock ~max:64 in
  let acc = acc @ got in
  if tries = 0 || List.length acc >= 3 then acc
  else begin
    Unix.sleepf 0.02;
    drain_udp u ~clock ~tries:(tries - 1) acc
  end

let udp_source_loopback () =
  let clock = Ingest.Clock.system () in
  match Ingest.Udp_source.listen ~host:"127.0.0.1" ~port:0 () with
  | Error e -> Alcotest.failf "listen: %s" e
  | Ok u ->
      Fun.protect ~finally:(fun () -> Ingest.Udp_source.close u) @@ fun () ->
      let addr = Ingest.Udp_source.local_addr u in
      check "ephemeral port assigned" true (Dsim.Addr.port addr > 0);
      check_int "dry socket yields nothing" 0
        (List.length (Ingest.Udp_source.recv_batch u ~clock ~max:16));
      with_sender (fun fd ->
          sendto fd addr "one";
          sendto fd addr "two";
          sendto fd addr "three";
          let got = drain_udp u ~clock ~tries:50 [] in
          check_int "all three received" 3 (List.length got);
          check "payloads preserved" true
            (List.map (fun d -> d.Ingest.Udp_source.payload) got = [ "one"; "two"; "three" ]);
          (* All from the same sender socket: one consistent source addr. *)
          (match got with
          | a :: rest ->
              List.iter
                (fun d ->
                  check "consistent src" true
                    (Dsim.Addr.equal a.Ingest.Udp_source.src d.Ingest.Udp_source.src))
                rest
          | [] -> ());
          let s = Ingest.Udp_source.stats u in
          check_int "received counted" 3 s.Ingest.Udp_source.received;
          check "no errors" true (s.Ingest.Udp_source.recv_errors = 0 && not s.Ingest.Udp_source.gave_up))

(* ------------------------------------------------------------------ *)
(* Daemon: pcap convergence with offline replay                        *)
(* ------------------------------------------------------------------ *)

let run_daemon ?(config = Ingest.Daemon.default) ?stop ?hard_kill ?on_batch sources =
  let clock = Ingest.Clock.manual () in
  match Ingest.Daemon.run ~clock ?stop ?hard_kill ?on_batch config sources with
  | Error e -> Alcotest.failf "daemon: %s" e
  | Ok report -> report

let daemon_config =
  { Ingest.Daemon.default with Ingest.Daemon.checkpoint_every_s = 0.0; batch = 32 }

(* A capture file is chronological; [make_trace] builds call-by-call, so
   sort before writing what a real sensor would have seen on the wire. *)
let by_time =
  List.stable_sort (fun (a : Vids.Trace.record) b ->
      Dsim.Time.compare a.Vids.Trace.at b.Vids.Trace.at)

let daemon_converges_with_replay () =
  let records = by_time (Test_recovery.make_trace ~calls:12) in
  let path = tmp_path ".pcap" in
  Ingest.Pcap.write_file path records;
  let report =
    run_daemon ~config:daemon_config [ Ingest.Daemon.Pcap_file { path; pace = false } ]
  in
  Sys.remove path;
  check "stopped at end of file" true (report.Ingest.Daemon.stop_reason = Ingest.Daemon.Eof);
  check_int "every record dispatched" (List.length records) report.Ingest.Daemon.dispatched;
  (* The convergence contract: the live path (pcap bytes → queue → clock
     bridge → advance_to/process) digests equal to the batch replay at
     the same horizon. *)
  let horizon = report.Ingest.Daemon.horizon in
  let _sched, offline = Vids.Trace.replay_until ~until:horizon records in
  check_str "digest equals offline replay"
    (Vids.Snapshot.digest ~at:horizon offline)
    (Vids.Snapshot.digest ~at:horizon report.Ingest.Daemon.engine)

let daemon_paced_run () =
  (* Under the manual clock, pacing "sleeps" advance virtual wall time
     instantly — the paced daemon is deterministic and fast. *)
  let records = Test_recovery.make_trace ~calls:4 in
  let path = tmp_path ".pcap" in
  Ingest.Pcap.write_file path records;
  let report =
    run_daemon ~config:daemon_config [ Ingest.Daemon.Pcap_file { path; pace = true } ]
  in
  Sys.remove path;
  check_int "every record dispatched" (List.length records) report.Ingest.Daemon.dispatched;
  check "horizon reached the last record" true
    (Dsim.Time.( >= ) report.Ingest.Daemon.horizon
       (List.fold_left (fun acc r -> Dsim.Time.max acc r.Vids.Trace.at) Dsim.Time.zero records))

(* The alert-preservation half of graceful shutdown: a SIGTERM landing
   after the attack traffic but before the capture ends must leave the
   same alert log as a run that saw the whole capture. *)
let flood_then_benign () =
  let flood =
    List.init 30 (fun i ->
        record
          ~at:(ms (200.0 +. (5.0 *. float_of_int i)))
          ~src:(Dsim.Addr.v "203.0.113.66" 5060)
          ~dst:(Dsim.Addr.v "10.2.0.2" 5060)
          (Test_recovery.invite ~call_id:(Printf.sprintf "flood-%d" i) ~port:20000))
  in
  let benign =
    List.map
      (fun r -> { r with Vids.Trace.at = Dsim.Time.add r.Vids.Trace.at (Dsim.Time.of_sec 2.0) })
      (Test_recovery.make_trace ~calls:6)
  in
  by_time (flood @ benign)

let alert_keys engine =
  List.sort compare (List.map Vids.Alert.dedup_key (Vids.Engine.alerts engine))

let daemon_sigterm_preserves_alerts () =
  let records = flood_then_benign () in
  let path = tmp_path ".pcap" in
  Ingest.Pcap.write_file path records;
  (* Clean end-of-capture baseline. *)
  let clean =
    run_daemon ~config:daemon_config [ Ingest.Daemon.Pcap_file { path; pace = false } ]
  in
  check "baseline raised the flood alert" true
    (Vids.Engine.alerts_of_kind clean.Ingest.Daemon.engine Vids.Alert.Invite_flood <> []);
  (* Same capture, but the stop flag (the signal handler's write) raised
     after the second batch — past the flood (the sorted capture leads
     with it), inside the benign tail, and strictly before the loop can
     reach end-of-file on its own. *)
  let stop = ref false in
  let batches = ref 0 in
  let interrupted =
    run_daemon ~config:daemon_config ~stop
      ~on_batch:(fun () ->
        incr batches;
        if !batches = 2 then stop := true)
      [ Ingest.Daemon.Pcap_file { path; pace = false } ]
  in
  Sys.remove path;
  check "stopped by signal" true
    (interrupted.Ingest.Daemon.stop_reason = Ingest.Daemon.Signalled);
  check "interrupted before end of capture" true
    (interrupted.Ingest.Daemon.dispatched < List.length records);
  check "flood dispatched before the signal" true (interrupted.Ingest.Daemon.dispatched >= 30);
  Alcotest.(check (list string))
    "same alert digest as the clean run"
    (alert_keys clean.Ingest.Daemon.engine)
    (alert_keys interrupted.Ingest.Daemon.engine)

let daemon_hard_kill_recovers () =
  let records = flood_then_benign () in
  let path = tmp_path ".pcap" in
  let snap = tmp_path ".ck" in
  let journal = snap ^ ".journal" in
  let capture = tmp_path ".trace" in
  Ingest.Pcap.write_file path records;
  let config =
    {
      daemon_config with
      Ingest.Daemon.checkpoint_every_s = 0.5;
      snapshot_path = Some snap;
      journal_path = Some journal;
      record_path = Some capture;
    }
  in
  (* kill -9 mid-ingest: the flag flips after the second batch — before
     the capture runs dry — and the loop returns without drain, final
     checkpoint, or channel close. *)
  let hard_kill = ref false in
  let batches = ref 0 in
  let killed =
    run_daemon ~config ~hard_kill
      ~on_batch:(fun () ->
        incr batches;
        if !batches = 2 then hard_kill := true)
      [ Ingest.Daemon.Pcap_file { path; pace = false } ]
  in
  check "killed" true (killed.Ingest.Daemon.stop_reason = Ingest.Daemon.Killed);
  check "a checkpoint had been saved" true (Sys.file_exists snap);
  (* Recover from the survivors: snapshot + journal + the daemon's own
     capture file.  The outcome must digest-converge with an offline
     replay of that capture at the recovered horizon. *)
  (match
     Vids.Recovery.recover_files ~journal_path:journal ~trace_path:capture
       ~snapshot_path:snap ()
   with
  | Error e -> Alcotest.failf "recovery: %s" e
  | Ok fr ->
      let o = fr.Vids.Recovery.outcome in
      let at = Dsim.Scheduler.now o.Vids.Recovery.sched in
      let dispatched_records =
        match open_in_bin capture with
        | ic ->
            let rs, bad = Vids.Trace.load_lenient ic in
            close_in ic;
            check_int "capture parses cleanly" 0 (List.length bad);
            rs
      in
      let _sched, offline = Vids.Trace.replay_until ~until:at dispatched_records in
      check_str "recovered digest equals replay of the capture"
        (Vids.Snapshot.digest ~at offline)
        (Vids.Snapshot.digest ~at o.Vids.Recovery.engine));
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; snap; snap ^ ".1"; journal; capture ]

(* ------------------------------------------------------------------ *)
(* Daemon: live UDP with a hostile source (real loopback)              *)
(* ------------------------------------------------------------------ *)

let daemon_udp_quarantine_and_detection () =
  (* The classifier keys SIP on port 5060, so the listener must own it;
     if another process does, fail loudly rather than silently skip. *)
  match Ingest.Udp_source.listen ~host:"127.0.0.1" ~port:5060 () with
  | Error e -> Alcotest.failf "cannot bind 127.0.0.1:5060 (%s)" e
  | Ok u ->
      let daemon_addr = Ingest.Udp_source.local_addr u in
      with_sender @@ fun hostile ->
      with_sender @@ fun attacker ->
      let stop = ref false in
      let batches = ref 0 in
      let send_invite i =
        sendto attacker daemon_addr
          (Test_recovery.invite ~call_id:(Printf.sprintf "udp-flood-%d" i) ~port:20000)
      in
      let report =
        run_daemon
          ~config:{ daemon_config with Ingest.Daemon.quarantine_threshold = 5 }
          ~stop
          ~on_batch:(fun () ->
            incr batches;
            (* Batch 1: a hostile source sprays garbage while a distinct
               source floods INVITEs — the attack the sensor must still
               see.  The loop then gets a generous number of turns to
               drain the kernel buffer before the stop flag trips. *)
            if !batches = 1 then begin
              for i = 1 to 12 do
                sendto hostile daemon_addr (Printf.sprintf "GARBAGE not sip %d" i)
              done;
              for i = 1 to 10 do
                send_invite i
              done
            end;
            (* A second burst well after the first: by now the source is
               quarantined, so these must die at the door — the drop
               counter is the proof the filter is load-bearing. *)
            if !batches = 50 then
              for i = 1 to 6 do
                sendto hostile daemon_addr (Printf.sprintf "GARBAGE again %d" i)
              done;
            if !batches = 200 then stop := true)
          [ Ingest.Daemon.Udp u ]
      in
      check "stopped by the test flag" true
        (report.Ingest.Daemon.stop_reason = Ingest.Daemon.Signalled);
      (* The garbage was counted and its source quarantined... *)
      check "parse errors counted" true (report.Ingest.Daemon.parse_errors >= 5);
      check "hostile source quarantined" true
        (report.Ingest.Daemon.quarantine.Ingest.Quarantine.quarantines >= 1);
      check "datagrams dropped at the door" true
        (report.Ingest.Daemon.quarantine.Ingest.Quarantine.dropped >= 1);
      (* ...while the concurrent legitimate detection still fired. *)
      check "INVITE flood still detected" true
        (Vids.Engine.alerts_of_kind report.Ingest.Daemon.engine Vids.Alert.Invite_flood <> [])

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "ingest",
      [
        tc "manual clock" manual_clock;
        tc "system clock monotone" system_clock_monotone;
        tc "pcap round-trip" pcap_roundtrip;
        tc "pcap non-IP host mapping" pcap_nonip_hosts;
        pcap_truncation_fuzz;
        pcap_garbage_fuzz;
        tc "shed queue watermarks" shed_queue_watermarks;
        tc "shed queue classifier" shed_queue_classifier;
        tc "quarantine threshold and ttl" quarantine_threshold_and_ttl;
        tc "quarantine window slides" quarantine_window_slides;
        tc "quarantine lru bound" quarantine_lru_bound;
        tc "backoff doubles, caps, budgets" backoff_doubles_caps_budgets;
        tc "backoff immune to float overflow" backoff_no_overflow;
        tc "udp source over loopback" udp_source_loopback;
        tc "daemon converges with offline replay" daemon_converges_with_replay;
        tc "daemon paced run under manual clock" daemon_paced_run;
        tc "daemon SIGTERM preserves earned alerts" daemon_sigterm_preserves_alerts;
        tc "daemon hard kill recovers through Recovery" daemon_hard_kill_recovers;
        tc "daemon quarantines hostile UDP source, still detects" daemon_udp_quarantine_and_detection;
      ] );
  ]
