(* Robustness: resource governance (caps, ageing sweep), fault containment
   (quarantine via the chaos self-test knob), graceful degradation, and the
   dsim fault-injection layer.  Everything here feeds attacker-shaped input
   and asserts the engine bends — evicts, sheds, quarantines — but never
   breaks. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let tc name f = Alcotest.test_case name `Quick f

let sec = Dsim.Time.of_sec
let alloc = Dsim.Packet.allocator ()
let sip_addr host = Dsim.Addr.v host 5060

let invite ?(to_user = "bob") ~call_id () =
  Printf.sprintf
    "INVITE sip:%s@b.example SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:%s@b.example>\r\n\
     Call-ID: %s\r\n\
     CSeq: 1 INVITE\r\n\
     Contact: <sip:alice@10.1.0.10:5060>\r\n\
     \r\n"
    to_user call_id call_id to_user call_id

type rig = { sched : Dsim.Scheduler.t; engine : Vids.Engine.t }

let rig ?(config = Vids.Config.default) () =
  let sched = Dsim.Scheduler.create () in
  { sched; engine = Vids.Engine.create ~config sched }

let feed r ~src ~dst payload =
  Vids.Engine.process_packet r.engine
    (Dsim.Packet.make alloc ~src ~dst ~sent_at:(Dsim.Scheduler.now r.sched) payload)

let feed_invite ?to_user r ~call_id =
  feed r ~src:(sip_addr "203.0.113.66") ~dst:(sip_addr "10.2.0.2") (invite ?to_user ~call_id ())

let rtp_bytes =
  Rtp.Rtp_packet.encode
    (Rtp.Rtp_packet.make ~payload_type:18 ~sequence:1 ~timestamp:0l ~ssrc:7l "x")

let feed_rtp r ~dst_port =
  feed r ~src:(Dsim.Addr.v "203.0.113.66" 16400) ~dst:(Dsim.Addr.v "10.2.0.10" dst_port) rtp_bytes

let pressure_alerts r = Vids.Engine.alerts_of_kind r.engine Vids.Alert.Resource_pressure
let fault_alerts r = Vids.Engine.alerts_of_kind r.engine Vids.Alert.Engine_fault

(* --- total create_call ----------------------------------------------- *)

let t_create_call_total () =
  let sched = Dsim.Scheduler.create () in
  let base =
    Vids.Fact_base.create ~config:Vids.Config.default
      ~timer_host:(Efsm.System.timer_host_of_scheduler sched)
      ~on_alert:(fun ~machine:_ ~state:_ ~subject:_ ~detail:_ -> ())
      ~on_anomaly:(fun ~machine:_ ~state:_ ~subject:_ ~event:_ ~detail:_ -> ())
      ()
  in
  let a = Vids.Fact_base.create_call base ~call_id:"dup" in
  let b = Vids.Fact_base.create_call base ~call_id:"dup" in
  check "same record returned" true (a == b);
  check_int "one call" 1 (Vids.Fact_base.stats base).Vids.Fact_base.active_calls

let t_duplicate_invite_via_engine () =
  let r = rig () in
  feed_invite r ~call_id:"same";
  feed_invite r ~call_id:"same";
  check_int "one record" 1 (Vids.Engine.memory_stats r.engine).Vids.Fact_base.active_calls

(* --- cap eviction ----------------------------------------------------- *)

let t_call_cap_eviction () =
  let config = { Vids.Config.default with Vids.Config.max_calls = 5 } in
  let r = rig ~config () in
  for i = 0 to 19 do
    feed_invite r ~call_id:(Printf.sprintf "cap-%d" i)
  done;
  let stats = Vids.Engine.memory_stats r.engine in
  check_int "active at cap" 5 stats.Vids.Fact_base.active_calls;
  check_int "peak at cap" 5 stats.Vids.Fact_base.peak_calls;
  check_int "evicted" 15 stats.Vids.Fact_base.calls_evicted;
  let base = Vids.Engine.fact_base r.engine in
  check "oldest gone" true (Vids.Fact_base.find_call base "cap-0" = None);
  check "newest kept" true (Vids.Fact_base.find_call base "cap-19" <> None);
  check "pressure alert raised" true (pressure_alerts r <> []);
  (* The alert log must not grow with the flood: dedup by kind|subject. *)
  check_int "one pressure alert" 1 (List.length (pressure_alerts r))

let t_detector_cap_eviction () =
  let config = { Vids.Config.default with Vids.Config.max_detectors = 3 } in
  let r = rig ~config () in
  (* Each RTP stream to a new destination grows a spam detector; even
     ports only, odd ports would classify as RTCP. *)
  for i = 0 to 9 do
    feed_rtp r ~dst_port:(20000 + (2 * i))
  done;
  let stats = Vids.Engine.memory_stats r.engine in
  check_int "detectors at cap" 3 stats.Vids.Fact_base.detectors;
  check_int "detectors evicted" 7 stats.Vids.Fact_base.detectors_evicted;
  check "pressure alert raised" true (pressure_alerts r <> [])

(* --- scheduled sweep --------------------------------------------------- *)

let t_scheduled_sweep () =
  let config =
    { Vids.Config.default with
      Vids.Config.call_max_age = sec 10.0;
      Vids.Config.sweep_interval = sec 4.0
    }
  in
  let r = rig ~config () in
  (* An INVITE that never progresses: an abandoned setup parked in the
     fact base.  The sweep, not any lifecycle event, must reclaim it. *)
  feed_invite r ~call_id:"abandoned";
  check_int "recorded" 1 (Vids.Engine.memory_stats r.engine).Vids.Fact_base.active_calls;
  Dsim.Scheduler.run_until r.sched (sec 30.0);
  let stats = Vids.Engine.memory_stats r.engine in
  check_int "reclaimed" 0 stats.Vids.Fact_base.active_calls;
  check_int "swept counted" 1 stats.Vids.Fact_base.calls_swept;
  check "sweep pressure alert" true
    (List.exists (fun a -> a.Vids.Alert.subject = "sweep") (pressure_alerts r))

let t_sweep_disabled_by_default () =
  let r = rig () in
  feed_invite r ~call_id:"keep";
  Dsim.Scheduler.run_until r.sched (sec 3600.0);
  check_int "untouched" 1 (Vids.Engine.memory_stats r.engine).Vids.Fact_base.active_calls

(* --- fault containment (chaos self-test) ------------------------------- *)

let t_chaos_quarantine () =
  let config = { Vids.Config.default with Vids.Config.chaos_inject_every = 1 } in
  let r = rig ~config () in
  (* Every machine injection blows up inside the boundary; the packet loop
     must survive, count the faults, and quarantine the records. *)
  feed_invite r ~call_id:"boom-1";
  let c1 = Vids.Engine.counters r.engine in
  check "faults counted" true (c1.Vids.Engine.faults > 0);
  check "fault alert raised" true (fault_alerts r <> []);
  check_int "faulting call quarantined" 0
    (Vids.Engine.memory_stats r.engine).Vids.Fact_base.active_calls;
  (* The engine keeps processing after the fault. *)
  feed_invite r ~call_id:"boom-2";
  let c2 = Vids.Engine.counters r.engine in
  check "still counting sip" true (c2.Vids.Engine.sip_packets = 2);
  check "faults keep accumulating" true (c2.Vids.Engine.faults > c1.Vids.Engine.faults)

let t_chaos_spares_other_calls () =
  (* Fault on the 4th injection only: earlier calls' records survive a
     later call's quarantine. *)
  let config = { Vids.Config.default with Vids.Config.chaos_inject_every = 4 } in
  let r = rig ~config () in
  feed_invite r ~call_id:"ok-1";
  (* injections so far: flood detector (1) + call (2) *)
  feed_invite r ~call_id:"victim";
  (* flood detector (3) + call (4 = boom) *)
  let base = Vids.Engine.fact_base r.engine in
  check "earlier call intact" true (Vids.Fact_base.find_call base "ok-1" <> None);
  check "faulting call quarantined" true (Vids.Fact_base.find_call base "victim" = None);
  check_int "one fault" 1 (Vids.Engine.counters r.engine).Vids.Engine.faults

let t_listener_fault_contained () =
  let r = rig () in
  Vids.Engine.on_alert r.engine (fun _ -> failwith "bad listener");
  feed r ~src:(sip_addr "203.0.113.66") ~dst:(sip_addr "10.2.0.2") "NOT SIP AT ALL";
  let c = Vids.Engine.counters r.engine in
  check_int "alert kept" 1 c.Vids.Engine.alerts_raised;
  check_int "listener fault counted" 1 c.Vids.Engine.faults

(* --- graceful degradation ---------------------------------------------- *)

let t_degradation_sheds_rtp () =
  let config = { Vids.Config.default with Vids.Config.degrade_high_water = 3 } in
  let r = rig ~config () in
  for i = 0 to 3 do
    feed_invite r ~call_id:(Printf.sprintf "load-%d" i)
  done;
  check "degraded" true (Vids.Engine.degraded r.engine);
  check "degradation alert" true
    (List.exists (fun a -> a.Vids.Alert.subject = "engine") (pressure_alerts r));
  let detectors_before = (Vids.Engine.memory_stats r.engine).Vids.Fact_base.detectors in
  feed_rtp r ~dst_port:20000;
  let c = Vids.Engine.counters r.engine in
  check_int "rtp packet still counted" 1 c.Vids.Engine.rtp_packets;
  check_int "stream analysis shed" 1 c.Vids.Engine.rtp_shed;
  check_int "no new stream detector" detectors_before
    (Vids.Engine.memory_stats r.engine).Vids.Fact_base.detectors;
  (* SIP signaling checks stay live while degraded. *)
  let active = (Vids.Engine.memory_stats r.engine).Vids.Fact_base.active_calls in
  feed_invite r ~call_id:"still-analyzed";
  check_int "sip still tracked" (active + 1)
    (Vids.Engine.memory_stats r.engine).Vids.Fact_base.active_calls

let t_degradation_recovers () =
  let config = { Vids.Config.default with Vids.Config.degrade_high_water = 3 } in
  let r = rig ~config () in
  for i = 0 to 3 do
    feed_invite r ~call_id:(Printf.sprintf "load-%d" i)
  done;
  check "degraded under load" true (Vids.Engine.degraded r.engine);
  (* Drain the base below the low-water mark (3/4 of high = 2). *)
  let base = Vids.Engine.fact_base r.engine in
  for i = 0 to 3 do
    match Vids.Fact_base.find_call base (Printf.sprintf "load-%d" i) with
    | Some call -> Vids.Fact_base.delete_call base call
    | None -> ()
  done;
  (* Degradation state is re-evaluated on the next packet. *)
  feed r ~src:(Dsim.Addr.v "h" 53) ~dst:(Dsim.Addr.v "h2" 53) "dns?";
  check "recovered" false (Vids.Engine.degraded r.engine);
  match Vids.Engine.degraded_intervals r.engine with
  | [ (_, Some _) ] -> ()
  | intervals ->
      Alcotest.failf "expected one closed interval, got %d" (List.length intervals)

(* --- dsim fault injection ---------------------------------------------- *)

type net_rig = {
  net : Dsim.Network.t;
  nsched : Dsim.Scheduler.t;
  a : Dsim.Network.node;
  received : string list ref;
}

let net_rig ~seed =
  let nsched = Dsim.Scheduler.create () in
  let net = Dsim.Network.create nsched (Dsim.Rng.create seed) in
  let a = Dsim.Network.add_node net ~name:"a" ~hosts:[ "a.host" ] in
  let b = Dsim.Network.add_node net ~name:"b" ~hosts:[ "b.host" ] in
  Dsim.Network.connect net a b ~rate_bps:1e7 ~prop_delay:(Dsim.Time.of_ms 1.0) ~loss_prob:0.0;
  let received = ref [] in
  Dsim.Network.set_handler b (fun p -> received := p.Dsim.Packet.payload :: !received);
  { net; nsched; a; received }

let blast r n =
  for i = 0 to n - 1 do
    let p =
      Dsim.Network.make_packet r.net
        ~src:(Dsim.Addr.v "a.host" 5060)
        ~dst:(Dsim.Addr.v "b.host" 5060)
        (Printf.sprintf "payload-%04d" i)
    in
    Dsim.Network.send r.net ~from:r.a p
  done;
  Dsim.Scheduler.run r.nsched

let t_fault_profile_corruption () =
  let r = net_rig ~seed:11 in
  Dsim.Network.set_fault_profile r.net
    (Some { Dsim.Network.pristine with Dsim.Network.corrupt_prob = 1.0 });
  blast r 50;
  let fs = Dsim.Network.fault_stats r.net in
  check_int "all corrupted" 50 fs.Dsim.Network.corrupted;
  check_int "all delivered" 50 (List.length !(r.received));
  check "payloads mangled" true
    (List.exists (fun p -> not (String.length p = 12 && String.sub p 0 8 = "payload-")) !(r.received))

let t_fault_profile_duplication_and_truncation () =
  let r = net_rig ~seed:12 in
  Dsim.Network.set_fault_profile r.net
    (Some
       { Dsim.Network.pristine with
         Dsim.Network.duplicate_prob = 1.0;
         Dsim.Network.truncate_prob = 1.0
       });
  blast r 30;
  let fs = Dsim.Network.fault_stats r.net in
  check_int "all truncated" 30 fs.Dsim.Network.truncated;
  check_int "all duplicated" 30 fs.Dsim.Network.duplicated;
  check_int "two copies each" 60 (List.length !(r.received));
  check "truncation shortens" true
    (List.for_all (fun p -> String.length p < 12) !(r.received))

let t_fault_profile_burst_loss () =
  let r = net_rig ~seed:13 in
  Dsim.Network.set_fault_profile r.net
    (Some
       { Dsim.Network.pristine with
         Dsim.Network.burst_loss_prob = 1.0;
         Dsim.Network.burst_length = 5
       });
  blast r 20;
  let fs = Dsim.Network.fault_stats r.net in
  check_int "everything burst-lost" 20 fs.Dsim.Network.burst_lost;
  check_int "nothing delivered" 0 (List.length !(r.received))

let t_fault_injection_deterministic () =
  let run seed =
    let r = net_rig ~seed in
    Dsim.Network.set_fault_profile r.net
      (Some
         { Dsim.Network.truncate_prob = 0.2;
           corrupt_prob = 0.2;
           duplicate_prob = 0.2;
           reorder_prob = 0.3;
           reorder_delay = Dsim.Time.of_ms 20.0;
           burst_loss_prob = 0.05;
           burst_length = 3
         });
    blast r 200;
    (Dsim.Network.fault_stats r.net, !(r.received))
  in
  let s1, p1 = run 99 and s2, p2 = run 99 in
  check "same stats" true (s1 = s2);
  check "same deliveries" true (p1 = p2);
  let s3, _ = run 100 in
  check "seed matters" true (s1 <> s3)

let suite =
  [
    ( "robustness.governance",
      [
        tc "create_call is total" t_create_call_total;
        tc "duplicate INVITE via engine" t_duplicate_invite_via_engine;
        tc "call cap evicts oldest" t_call_cap_eviction;
        tc "detector cap evicts oldest" t_detector_cap_eviction;
        tc "scheduled sweep reclaims abandoned calls" t_scheduled_sweep;
        tc "sweep disabled by default" t_sweep_disabled_by_default;
      ] );
    ( "robustness.containment",
      [
        tc "chaos fault quarantines and continues" t_chaos_quarantine;
        tc "quarantine spares other calls" t_chaos_spares_other_calls;
        tc "listener fault contained" t_listener_fault_contained;
      ] );
    ( "robustness.degradation",
      [
        tc "high water sheds stream analysis" t_degradation_sheds_rtp;
        tc "recovers below low water" t_degradation_recovers;
      ] );
    ( "robustness.faults",
      [
        tc "corruption" t_fault_profile_corruption;
        tc "duplication + truncation" t_fault_profile_duplication_and_truncation;
        tc "burst loss" t_fault_profile_burst_loss;
        tc "deterministic replay" t_fault_injection_deterministic;
      ] );
  ]
