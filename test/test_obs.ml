(* Telemetry subsystem: the metrics registry (registration, snapshots,
   merge), the flight recorder (ring semantics, dumps), the exporters, the
   Quantiles.merge edge cases the registry leans on, and the two
   engine-level contracts — telemetry is write-only (digest-identical
   detection with telemetry on) and shard-merged counter totals equal a
   sequential run's. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

let q ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let sec = Dsim.Time.of_sec

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- Quantiles.merge edge cases --------------------------------------- *)

module Q = Dsim.Stat.Quantiles

let t_quantiles_merge_empty () =
  let a = Q.create () in
  List.iter (Q.add a) [ 1.0; 2.0; 3.0; 4.0 ];
  let empty = Q.create () in
  let m1 = Q.merge a empty in
  let m2 = Q.merge empty a in
  check_int "count survives a+empty" 4 (Q.count m1);
  check_int "count survives empty+a" 4 (Q.count m2);
  check_str "p50 unchanged" (string_of_float (Q.p50 a)) (string_of_float (Q.p50 m1));
  let both_empty = Q.merge (Q.create ()) (Q.create ()) in
  check_int "empty+empty count" 0 (Q.count both_empty);
  check "empty quantile is nan" true (Float.is_nan (Q.p50 both_empty))

let t_quantiles_merge_past_capacity () =
  let a = Q.create ~capacity:8 () in
  let b = Q.create ~capacity:8 () in
  for i = 1 to 100 do
    Q.add a (float_of_int i)
  done;
  for i = 101 to 200 do
    Q.add b (float_of_int i)
  done;
  let m = Q.merge a b in
  check_int "seen counts sum" 200 (Q.count m);
  (* The reservoir holds a sample of both sides, so the median estimate
     must land strictly inside the combined range. *)
  let p50 = Q.p50 m in
  check "median within range" true (p50 >= 1.0 && p50 <= 200.0)

let t_quantiles_seed_determinism () =
  let fill seed =
    let t = Q.create ~capacity:16 ~seed () in
    for i = 0 to 499 do
      Q.add t (float_of_int (i * 7 mod 100))
    done;
    t
  in
  let a = fill 0x51a7 and b = fill 0x51a7 in
  check_str "same seed, same estimate"
    (string_of_float (Q.p95 a))
    (string_of_float (Q.p95 b));
  let m1 = Q.merge a b and m2 = Q.merge a b in
  check_str "merge is deterministic"
    (string_of_float (Q.p95 m1))
    (string_of_float (Q.p95 m2));
  check_int "merged seen" 1000 (Q.count m1)

(* --- Metrics registry -------------------------------------------------- *)

module M = Obs.Metrics

let t_register_idempotent () =
  let m = M.create () in
  let a = M.counter m "hits" ~labels:[ ("shard", "0") ] in
  let b = M.counter m "hits" ~labels:[ ("shard", "0") ] in
  M.incr a;
  M.incr b;
  check_int "one instrument behind both handles" 2 (M.counter_value a);
  (* Label order must not mint a second instrument. *)
  let c = M.counter m "multi" ~labels:[ ("b", "2"); ("a", "1") ] in
  let d = M.counter m "multi" ~labels:[ ("a", "1"); ("b", "2") ] in
  M.incr c;
  check_int "label order canonicalized" 1 (M.counter_value d)

let t_register_type_mismatch () =
  let m = M.create () in
  ignore (M.counter m "x");
  Alcotest.check_raises "counter reused as gauge"
    (Invalid_argument "Obs.Metrics: x{} already registered as a counter") (fun () ->
      ignore (M.gauge m "x"))

let t_counter_monotone () =
  let m = M.create () in
  let c = M.counter m "n" in
  M.add c 5;
  M.add c (-3);
  M.add c 0;
  check_int "negative and zero adds ignored" 5 (M.counter_value c)

let t_snapshot_values () =
  let m = M.create ~clock:(fun () -> sec 2.0) () in
  let c = M.counter m "reqs" ~labels:[ ("class", "sip") ] in
  let g = M.gauge m "occupancy" in
  let h = M.histogram m "lat" in
  M.add c 7;
  M.set g 3.5;
  List.iter (M.observe h) [ 0.001; 0.002; 0.004 ];
  let snap = M.snapshot m in
  check_int "stamped by the virtual clock" (Dsim.Time.to_us (sec 2.0))
    (Dsim.Time.to_us snap.M.at);
  (match M.find snap ~labels:[ ("class", "sip") ] "reqs" with
  | Some (M.Counter 7) -> ()
  | _ -> Alcotest.fail "counter row wrong");
  (match M.find snap "occupancy" with
  | Some (M.Gauge v) -> check "gauge value" true (v = 3.5)
  | _ -> Alcotest.fail "gauge row wrong");
  (match M.find snap "lat" with
  | Some (M.Histogram hs) ->
      check_int "histogram count" 3 hs.M.count;
      check "histogram sum" true (abs_float (hs.M.sum -. 0.007) < 1e-12);
      check_int "bucket total = count" 3 (Array.fold_left ( + ) 0 hs.M.buckets)
  | _ -> Alcotest.fail "histogram row wrong");
  check_int "total sums counter rows" 7 (M.total snap "reqs")

let t_snapshot_isolated () =
  let m = M.create () in
  let c = M.counter m "n" in
  let h = M.histogram m "h" in
  M.incr c;
  M.observe h 1.0;
  let snap = M.snapshot m in
  M.incr c;
  M.observe h 2.0;
  (match M.find snap "n" with
  | Some (M.Counter 1) -> ()
  | _ -> Alcotest.fail "snapshot counter mutated");
  match M.find snap "h" with
  | Some (M.Histogram hs) -> check_int "snapshot histogram frozen" 1 hs.M.count
  | _ -> Alcotest.fail "snapshot histogram mutated"

let t_merge_round_trip () =
  let mk adds observes =
    let m = M.create () in
    let c = M.counter m "hits" ~labels:[ ("class", "sip") ] in
    let g = M.gauge m "occ" in
    let h = M.histogram m "lat" in
    M.add c adds;
    M.set g (float_of_int adds);
    List.iter (M.observe h) observes;
    m
  in
  let a = mk 3 [ 0.001; 0.5 ] in
  let b = mk 5 [ 0.002 ] in
  (* A row only one side has must pass through. *)
  let only_a = M.counter a "only_a" in
  M.incr only_a;
  let merged = M.merge (M.snapshot a) (M.snapshot b) in
  check_int "counters sum" 8 (M.total merged "hits");
  check_int "one-sided row passes through" 1 (M.total merged "only_a");
  (match M.find merged "occ" with
  | Some (M.Gauge v) -> check "gauges sum" true (v = 8.0)
  | _ -> Alcotest.fail "merged gauge wrong");
  (match M.find merged "lat" with
  | Some (M.Histogram hs) ->
      check_int "histogram counts sum" 3 hs.M.count;
      check_int "buckets sum elementwise" 3 (Array.fold_left ( + ) 0 hs.M.buckets);
      check_int "reservoirs merge" 3 (Q.count hs.M.quantiles)
  | _ -> Alcotest.fail "merged histogram wrong");
  (* Rows stay sorted so exports are deterministic. *)
  let keys = List.map (fun r -> r.M.name) merged.M.rows in
  check "rows sorted" true (List.sort String.compare keys = keys)

let t_merge_type_mismatch () =
  let a = M.create () and b = M.create () in
  ignore (M.counter a "x");
  ignore (M.gauge b "x");
  check "merge rejects mismatched types" true
    (try
       ignore (M.merge (M.snapshot a) (M.snapshot b));
       false
     with Invalid_argument _ -> true)

let q_merge_totals =
  q "metrics: split counter increments merge to the whole"
    QCheck.(list (int_range 0 50))
    (fun xs ->
      let whole = M.create () in
      let cw = M.counter whole "n" in
      let left = M.create () and right = M.create () in
      let cl = M.counter left "n" and cr = M.counter right "n" in
      List.iteri
        (fun i x ->
          M.add cw x;
          M.add (if i mod 2 = 0 then cl else cr) x)
        xs;
      let merged = M.merge (M.snapshot left) (M.snapshot right) in
      M.total merged "n" = M.total (M.snapshot whole) "n")

let q_merge_histogram_buckets =
  q "metrics: split observations merge to the whole histogram"
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun xs ->
      let xs = List.map abs_float xs in
      let whole = M.create () in
      let hw = M.histogram whole "h" in
      let left = M.create () and right = M.create () in
      let hl = M.histogram left "h" and hr = M.histogram right "h" in
      List.iteri
        (fun i x ->
          M.observe hw x;
          M.observe (if i mod 3 = 0 then hl else hr) x)
        xs;
      let buckets snap =
        match M.find snap "h" with
        | Some (M.Histogram hs) -> (hs.M.buckets, hs.M.count, hs.M.sum)
        | _ -> ([||], -1, nan)
      in
      let wb, wc, ws = buckets (M.snapshot whole) in
      let mb, mc, ms = buckets (M.merge (M.snapshot left) (M.snapshot right)) in
      (* Sums are accumulated in different orders, so compare with a
         relative tolerance; buckets and counts are integers and exact. *)
      wb = mb && wc = mc
      && (xs = [] || abs_float (ws -. ms) <= 1e-9 *. Float.max 1.0 (abs_float ws)))

(* --- Flight recorder ---------------------------------------------------- *)

module Tr = Obs.Trace

let note i = Tr.Note { label = "n"; detail = string_of_int i }

let t_ring_wraparound () =
  let t = Tr.create ~capacity:4 () in
  for i = 0 to 9 do
    Tr.record t ~at:(sec (float_of_int i)) (note i)
  done;
  check_int "recorded counts everything" 10 (Tr.recorded t);
  check_int "capacity" 4 (Tr.capacity t);
  let tail = Tr.entries t in
  check_int "retains last capacity" 4 (List.length tail);
  check_int "oldest retained" 6 (List.hd tail).Tr.seq;
  check_int "newest retained" 9 (List.nth tail 3).Tr.seq;
  (* seq is monotone across the wrap. *)
  let seqs = List.map (fun e -> e.Tr.seq) tail in
  check "oldest-first order" true (seqs = [ 6; 7; 8; 9 ])

let t_ring_under_capacity () =
  let t = Tr.create ~capacity:8 () in
  Tr.record t ~at:(sec 1.0) (note 0);
  Tr.record t ~at:(sec 2.0) (note 1);
  check_int "all retained" 2 (List.length (Tr.entries t));
  Tr.clear t;
  check_int "clear empties" 0 (List.length (Tr.entries t));
  check_int "clear resets recorded" 0 (Tr.recorded t)

let t_ring_capacity_validated () =
  check "zero capacity rejected" true
    (try
       ignore (Tr.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

let t_dump_sinks () =
  let t = Tr.create ~capacity:4 () in
  let calls = ref [] in
  Tr.on_dump t (fun ~reason entries -> calls := ("first:" ^ reason, List.length entries) :: !calls);
  (* A sink that throws must not prevent later sinks from running. *)
  Tr.on_dump t (fun ~reason:_ _ -> failwith "bad sink");
  Tr.on_dump t (fun ~reason entries -> calls := ("third:" ^ reason, List.length entries) :: !calls);
  Tr.record t ~at:(sec 1.0) (note 0);
  Tr.record t ~at:(sec 2.0) (note 1);
  let returned = Tr.dump t ~reason:"test" in
  check_int "dump returns the tail" 2 (List.length returned);
  check_int "both healthy sinks ran" 2 (List.length !calls);
  (* Registration order; the list accumulated in reverse. *)
  check_str "first sink first" "first:test" (fst (List.nth !calls 1));
  check_str "third sink after" "third:test" (fst (List.nth !calls 0));
  check_int "ring not cleared by dump" 2 (List.length (Tr.entries t))

let t_entry_json () =
  let e =
    {
      Tr.seq = 3;
      at = Dsim.Time.of_us 1500;
      ev = Tr.Alert { kind = "BYE-DoS"; subject = "call-\"1\"" };
    }
  in
  let s = Tr.entry_to_json e in
  check "seq present" true (String.length s > 0 && String.sub s 0 10 = {|{"seq": 3,|});
  check "quote escaped" true (contains ~needle:{|call-\"1\"|} s)

(* --- Exporters ---------------------------------------------------------- *)

let t_prometheus_format () =
  let m = M.create () in
  let c = M.counter m "vids_packets_total" ~help:"Packets" ~labels:[ ("class", "sip") ] in
  let h = M.histogram m "vids_lat" ~help:"Latency" in
  M.add c 12;
  List.iter (M.observe h) [ 0.5e-6; 3e-6; 1e6 ];
  let text = Obs.Export.prometheus (M.snapshot m) in
  check "help header" true (contains ~needle:"# HELP vids_packets_total Packets" text);
  check "type header" true (contains ~needle:"# TYPE vids_packets_total counter" text);
  check "labeled sample" true (contains ~needle:{|vids_packets_total{class="sip"} 12|} text);
  check "histogram type" true (contains ~needle:"# TYPE vids_lat histogram" text);
  check "inf bucket carries the total" true
    (contains ~needle:{|vids_lat_bucket{le="+Inf"} 3|} text);
  check "count series" true (contains ~needle:"vids_lat_count 3" text);
  check "quantile series" true (contains ~needle:{|vids_lat_quantile{quantile="0.95"}|} text);
  (* Cumulative bucket counts never decrease. *)
  let last = ref (-1) in
  let ok = ref true in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if String.length line > 15 && String.sub line 0 15 = "vids_lat_bucket" then begin
           match String.rindex_opt line ' ' with
           | Some i ->
               let v = int_of_string (String.sub line (i + 1) (String.length line - i - 1)) in
               if v < !last then ok := false;
               last := v
           | None -> ()
         end);
  check "buckets cumulative" true !ok

let t_jsonl_and_json () =
  let m = M.create () in
  M.add (M.counter m "a") 1;
  M.set (M.gauge m "b") 2.0;
  let snap = M.snapshot m in
  let jsonl = Obs.Export.metrics_jsonl snap in
  check_int "one line per row" 2
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)));
  let json = Obs.Export.metrics_json snap in
  check "single object" true (json.[0] = '{' && contains ~needle:{|"metrics"|} json)

let t_write_by_extension () =
  let dir = Filename.temp_file "obs" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let m = M.create () in
  M.add (M.counter m "a" ~help:"A") 1;
  let snap = M.snapshot m in
  let read p =
    let ic = open_in p in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let prom = Filename.concat dir "m.prom" and jsl = Filename.concat dir "m.jsonl" in
  Obs.Export.write_metrics ~path:prom snap;
  Obs.Export.write_metrics ~path:jsl snap;
  check "prom file is exposition text" true (String.sub (read prom) 0 6 = "# HELP");
  check "jsonl file is json" true ((read jsl).[0] = '{');
  let tr = Filename.concat dir "t.jsonl" in
  let entries = [ { Tr.seq = 0; at = sec 1.0; ev = note 0 } ] in
  Obs.Export.append_trace ~reason:"r1" ~path:tr entries;
  Obs.Export.append_trace ~reason:"r2" ~path:tr entries;
  let lines = String.split_on_char '\n' (read tr) |> List.filter (fun l -> l <> "") in
  check_int "two dumps appended" 4 (List.length lines);
  check "dump marker leads" true (contains ~needle:{|"reason": "r1"|} (List.hd lines));
  Sys.remove prom;
  Sys.remove jsl;
  Sys.remove tr;
  Unix.rmdir dir

let t_json_helpers () =
  let module J = Obs.Json in
  check_str "escaping" {|"a\"b\\c\nd"|} (J.quote "a\"b\\c\nd");
  check_str "non-finite floats are null" "null" (J.float nan);
  check_str "finite float round-trips" "0.5" (J.float 0.5);
  check_str "obj" {|{"a": 1}|} (J.obj [ ("a", J.int 1) ])

(* --- Engine integration ------------------------------------------------- *)

let alloc = Dsim.Packet.allocator ()
let sip_addr host = Dsim.Addr.v host 5060

let invite ~call_id =
  Printf.sprintf
    "INVITE sip:bob@b.example SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>\r\n\
     Call-ID: %s\r\n\
     CSeq: 1 INVITE\r\n\
     Contact: <sip:alice@10.1.0.10:5060>\r\n\
     \r\n"
    call_id call_id call_id

let rtp_bytes =
  Rtp.Rtp_packet.encode
    (Rtp.Rtp_packet.make ~payload_type:18 ~sequence:1 ~timestamp:0l ~ssrc:7l "x")

(* A small mixed workload: calls, rogue RTP, and junk. *)
let feed_workload sched engine =
  let feed ~src ~dst payload =
    Vids.Engine.process_packet engine
      (Dsim.Packet.make alloc ~src ~dst ~sent_at:(Dsim.Scheduler.now sched) payload)
  in
  for i = 0 to 9 do
    feed ~src:(sip_addr "203.0.113.66") ~dst:(sip_addr "10.2.0.2")
      (invite ~call_id:(Printf.sprintf "obs-%d" i))
  done;
  for i = 0 to 24 do
    feed
      ~src:(Dsim.Addr.v "203.0.113.66" 16400)
      ~dst:(Dsim.Addr.v "10.2.0.10" (20000 + (2 * (i mod 3))))
      rtp_bytes
  done;
  feed ~src:(sip_addr "203.0.113.66") ~dst:(sip_addr "10.2.0.2") "NOT SIP AT ALL"

let run_workload ~telemetry () =
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create sched in
  let obs =
    if not telemetry then None
    else begin
      let metrics = M.create () in
      let flight = Tr.create () in
      Vids.Engine.set_telemetry engine ~metrics ~flight ();
      Some (metrics, flight)
    end
  in
  feed_workload sched engine;
  Dsim.Scheduler.run_until sched (sec 30.0);
  (engine, obs)

let t_telemetry_is_write_only () =
  let bare, _ = run_workload ~telemetry:false () in
  let inst, _ = run_workload ~telemetry:true () in
  check_str "digest identical with telemetry on"
    (Vids.Snapshot.digest ~at:(sec 30.0) bare)
    (Vids.Snapshot.digest ~at:(sec 30.0) inst)

let t_counters_match_engine () =
  let engine, obs = run_workload ~telemetry:true () in
  let metrics, flight = Option.get obs in
  let snap = M.snapshot metrics in
  let c = Vids.Engine.counters engine in
  check_int "sip packets" c.Vids.Engine.sip_packets
    (match M.find snap ~labels:[ ("class", "sip") ] "vids_packets_total" with
    | Some (M.Counter n) -> n
    | _ -> -1);
  (match M.find snap ~labels:[ ("class", "rtp") ] "vids_packets_total" with
  | Some (M.Counter n) -> check_int "rtp packets" c.Vids.Engine.rtp_packets n
  | _ -> Alcotest.fail "rtp counter missing");
  (match M.find snap ~labels:[ ("class", "malformed") ] "vids_packets_total" with
  | Some (M.Counter n) -> check_int "malformed packets" c.Vids.Engine.malformed_packets n
  | _ -> Alcotest.fail "malformed counter missing");
  check_int "alerts by kind sum to alerts_raised" c.Vids.Engine.alerts_raised
    (M.total snap "vids_alerts_total");
  (* The pipeline leaves a trail in the flight recorder. *)
  check "flight recorder saw the pipeline" true (Tr.recorded flight > 0);
  (* The engine's virtual clock stamps the snapshot. *)
  check_int "snapshot at engine time" (Dsim.Time.to_us (sec 30.0)) (Dsim.Time.to_us snap.M.at)

let t_quarantine_dumps_flight_recorder () =
  let config = { Vids.Config.default with Vids.Config.chaos_inject_every = 1 } in
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create ~config sched in
  let metrics = M.create () in
  let flight = Tr.create () in
  Vids.Engine.set_telemetry engine ~metrics ~flight ();
  let dumps = ref [] in
  Tr.on_dump flight (fun ~reason entries -> dumps := (reason, entries) :: !dumps);
  Vids.Engine.process_packet engine
    (Dsim.Packet.make alloc ~src:(sip_addr "203.0.113.66") ~dst:(sip_addr "10.2.0.2")
       ~sent_at:Dsim.Time.zero
       (invite ~call_id:"boom"));
  check "fault was injected" true ((Vids.Engine.counters engine).Vids.Engine.faults > 0);
  check "quarantine dumped the flight recorder" true (!dumps <> []);
  let reason, entries = List.hd (List.rev !dumps) in
  check "dump names the quarantine" true (contains ~needle:"quarantine" reason);
  check "dump is non-empty" true (entries <> []);
  check_int "faults counted in telemetry" (Vids.Engine.counters engine).Vids.Engine.faults
    (M.total (M.snapshot metrics) "vids_faults_total")

(* --- Sharded merge equals sequential ------------------------------------ *)

let t_sharded_totals_equal_sequential () =
  (* The same trace through a 2-shard telemetry run and a sequential
     instrumented replay: merged traffic-counter totals must be equal. *)
  let records = ref [] in
  let add at src dst payload = records := { Vids.Trace.at; src; dst; payload } :: !records in
  for i = 0 to 39 do
    add
      (Dsim.Time.of_ms (float_of_int (10 * i)))
      (sip_addr "10.1.0.2") (sip_addr "10.2.0.2")
      (invite ~call_id:(Printf.sprintf "shard-%d" i))
  done;
  for i = 0 to 19 do
    add
      (Dsim.Time.of_ms (float_of_int ((10 * i) + 5)))
      (Dsim.Addr.v "10.5.0.1" 22000)
      (Dsim.Addr.v (Printf.sprintf "10.6.0.%d" (i mod 4)) 22000)
      rtp_bytes
  done;
  let trace = List.rev !records in
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create sched in
  let metrics = M.create () in
  Vids.Engine.set_telemetry engine ~metrics ();
  ignore (Vids.Trace.schedule_into sched engine trace);
  Dsim.Scheduler.run_until sched (sec 30.0);
  let seq_snap = M.snapshot metrics in
  let outcome =
    Shard.Shard_engine.run_trace ~telemetry:true ~horizon:(sec 30.0) ~shards:2 trace
  in
  let merged =
    match outcome.Shard.Shard_engine.metrics with
    | Some s -> s
    | None -> Alcotest.fail "telemetry run produced no merged snapshot"
  in
  List.iter
    (fun cls ->
      let get snap =
        match M.find snap ~labels:[ ("class", cls) ] "vids_packets_total" with
        | Some (M.Counter n) -> n
        | _ -> 0
      in
      check_int (cls ^ " packets equal") (get seq_snap) (get merged))
    [ "sip"; "rtp"; "rtcp"; "other"; "malformed" ];
  check_int "total packets equal"
    (M.total seq_snap "vids_packets_total")
    (M.total merged "vids_packets_total");
  (* Worker flight recorders came back across the domain join. *)
  check_int "one flight per shard" 2 (Array.length outcome.Shard.Shard_engine.flights)

(* --- Hot-path profiler --------------------------------------------------- *)

module P = Obs.Prof

(* Injected clock/alloc pin the measured values, so self-time arithmetic
   is exact: the parent's self excludes the nested child's elapsed. *)
let t_prof_self_time () =
  let now = ref 0.0 and words = ref 0.0 in
  let p = P.create ~clock:(fun () -> !now) ~alloc:(fun () -> !words) () in
  P.enter p P.Drive;
  now := 1.0;
  words := 100.0;
  P.enter p P.Sip_parse;
  now := 3.0;
  words := 400.0;
  P.exit p P.Sip_parse;
  now := 10.0;
  words := 1000.0;
  P.exit p P.Drive;
  check_int "idle depth" 0 (P.depth p);
  let report = P.report_of_snapshot (M.snapshot (P.registry p)) in
  let row name = List.find (fun r -> r.P.r_stage = name) report in
  let drive = row "drive" and sip = row "sip-parse" in
  check_int "one span each" 1 drive.P.r_spans;
  check "child self = its elapsed" true (abs_float (sip.P.r_seconds -. 2.0) < 1e-9);
  check "parent self excludes the child" true (abs_float (drive.P.r_seconds -. 8.0) < 1e-9);
  check "child words" true (abs_float (sip.P.r_words -. 300.0) < 1e-9);
  check "parent words exclude the child" true (abs_float (drive.P.r_words -. 700.0) < 1e-9);
  (* Self times are disjoint, so they sum to the outermost elapsed. *)
  check "self times sum to wall" true (abs_float (P.total_seconds report -. 10.0) < 1e-9);
  check_str "ranked largest first" "drive" (List.hd report).P.r_stage

let t_prof_guards () =
  let zero () = 0.0 in
  let p = P.create ~clock:zero ~alloc:zero () in
  (* Exit on an empty stack, then an exit naming the wrong stage: both
     counted and dropped, neither raises nor accounts a span. *)
  P.exit p P.Detect;
  P.enter p P.Drive;
  P.exit p P.Detect;
  check_int "mismatch still pops" 0 (P.depth p);
  let snap = M.snapshot (P.registry p) in
  check_int "mismatches counted" 2 (M.total snap "vids_prof_mismatch_total");
  check_int "nothing accounted" 0 (M.total snap "vids_stage_spans_total");
  (* Spans beyond the fixed stack depth are counted, not measured. *)
  let p = P.create ~clock:zero ~alloc:zero () in
  for _ = 1 to 20 do
    P.enter p P.Detect
  done;
  for _ = 1 to 20 do
    P.exit p P.Detect
  done;
  let snap = M.snapshot (P.registry p) in
  check_int "overflows counted" 4 (M.total snap "vids_prof_depth_overflow_total");
  check_int "measured spans capped at the stack depth" 16 (M.total snap "vids_stage_spans_total");
  check_int "no mismatches from the unwind" 0 (M.total snap "vids_prof_mismatch_total");
  check_int "depth restored" 0 (P.depth p)

let t_prof_span_protects () =
  let zero () = 0.0 in
  let p = P.create ~clock:zero ~alloc:zero () in
  (try P.span p P.Checkpoint (fun () -> failwith "boom") with Failure _ -> ());
  check_int "popped on raise" 0 (P.depth p);
  let snap = M.snapshot (P.registry p) in
  check_int "span still accounted" 1 (M.total snap "vids_stage_spans_total");
  check_int "no mismatch" 0 (M.total snap "vids_prof_mismatch_total")

let t_prof_stage_names () =
  List.iter
    (fun s ->
      match P.stage_of_name (P.stage_name s) with
      | Some s' -> check ("round-trips: " ^ P.stage_name s) true (s = s')
      | None -> Alcotest.fail ("stage name lost: " ^ P.stage_name s))
    P.all_stages

let t_prof_flight_sampling () =
  let fl = Tr.create ~capacity:8 () in
  let zero () = 0.0 in
  let p = P.create ~flight:fl ~sample_every:1 ~clock:zero ~alloc:zero () in
  P.span p P.Detect (fun () -> ());
  check_int "span sampled into the flight recorder" 1 (Tr.recorded fl);
  match (List.hd (Tr.entries fl)).Tr.ev with
  | Tr.Span { stage; _ } -> check_str "sampled stage name" "detect" stage
  | _ -> Alcotest.fail "expected a span event"

let q_prof_digest_transparent =
  q ~count:25 "prof: profiling is write-only (digest)"
    QCheck.(pair (int_range 0 8) (int_range 0 20))
    (fun (n_calls, n_rtp) ->
      let run profiled =
        let sched = Dsim.Scheduler.create () in
        let engine = Vids.Engine.create sched in
        if profiled then Vids.Engine.set_profiler engine (Some (P.create ()));
        let feed ~src ~dst payload =
          Vids.Engine.process_packet engine
            (Dsim.Packet.make alloc ~src ~dst ~sent_at:(Dsim.Scheduler.now sched) payload)
        in
        for i = 0 to n_calls - 1 do
          feed ~src:(sip_addr "203.0.113.66") ~dst:(sip_addr "10.2.0.2")
            (invite ~call_id:(Printf.sprintf "prof-%d" i))
        done;
        for i = 0 to n_rtp - 1 do
          feed
            ~src:(Dsim.Addr.v "203.0.113.66" 16400)
            ~dst:(Dsim.Addr.v "10.2.0.10" (20000 + (2 * (i mod 3))))
            rtp_bytes
        done;
        Dsim.Scheduler.run_until sched (sec 30.0);
        Vids.Snapshot.digest ~at:(sec 30.0) engine
      in
      String.equal (run false) (run true))

let t_prof_export_formats () =
  let now = ref 0.0 in
  let clock () =
    now := !now +. 0.001;
    !now
  in
  let p = P.create ~clock ~alloc:(fun () -> 0.0) () in
  P.span p P.Sip_parse (fun () -> ());
  P.sample_gc p;
  let snap = M.snapshot (P.registry p) in
  let text = Obs.Export.prometheus snap in
  check "stage histogram exported" true
    (contains ~needle:"# TYPE vids_stage_seconds histogram" text);
  check "stage label on buckets" true
    (contains ~needle:{|vids_stage_seconds_bucket{stage="sip-parse"|} text);
  check "span counter exported" true
    (contains ~needle:{|vids_stage_spans_total{stage="sip-parse"} 1|} text);
  check "gc gauge typed" true (contains ~needle:"# TYPE vids_gc_heap_words gauge" text);
  check "gc gauge sampled" true (contains ~needle:"vids_gc_heap_words " text);
  let jsonl = Obs.Export.metrics_jsonl snap in
  check "jsonl carries the gc gauge" true (contains ~needle:"vids_gc_heap_words" jsonl);
  check "jsonl carries the stage rows" true (contains ~needle:"vids_stage_spans_total" jsonl);
  (* The report JSON names every field the trend gate reads. *)
  let js = P.report_json ~records:10 ~total_s:0.002 (P.report_of_snapshot snap) in
  List.iter
    (fun needle -> check ("report json has " ^ needle) true (contains ~needle js))
    [ {|"stage"|}; {|"spans"|}; {|"self_s"|}; {|"share"|}; {|"bytes_per_record"|} ]

let t_prof_shard_merge () =
  let records = ref [] in
  let add at src dst payload = records := { Vids.Trace.at; src; dst; payload } :: !records in
  for i = 0 to 39 do
    add
      (Dsim.Time.of_ms (float_of_int (10 * i)))
      (sip_addr "10.1.0.2") (sip_addr "10.2.0.2")
      (invite ~call_id:(Printf.sprintf "pshard-%d" i))
  done;
  for i = 0 to 19 do
    add
      (Dsim.Time.of_ms (float_of_int ((10 * i) + 5)))
      (Dsim.Addr.v "10.5.0.1" 22000)
      (Dsim.Addr.v (Printf.sprintf "10.6.0.%d" (i mod 4)) 22000)
      rtp_bytes
  done;
  let trace = List.rev !records in
  (* Sequential profiled replay for the parse-span ground truth. *)
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create sched in
  let p = P.create () in
  Vids.Engine.set_profiler engine (Some p);
  ignore (Vids.Trace.schedule_into sched engine trace);
  Dsim.Scheduler.run_until sched (sec 30.0);
  let seq_snap = M.snapshot (P.registry p) in
  let outcome = Shard.Shard_engine.run_trace ~profile:true ~horizon:(sec 30.0) ~shards:2 trace in
  let merged =
    match outcome.Shard.Shard_engine.metrics with
    | Some s -> s
    | None -> Alcotest.fail "profiled shard run produced no merged snapshot"
  in
  let spans snap stage =
    match M.find snap ~labels:[ ("stage", stage) ] "vids_stage_spans_total" with
    | Some (M.Counter n) -> n
    | _ -> 0
  in
  (* Parse spans are per packet, so the merged cross-shard counts must
     equal the sequential run's exactly. *)
  List.iter
    (fun stage -> check_int (stage ^ " spans equal") (spans seq_snap stage) (spans merged stage))
    [ "sip-parse"; "rtp-parse" ];
  (* Dispatcher- and worker-side plumbing stages cover every record. *)
  let n = List.length trace in
  check_int "partition spans = records" n (spans merged "partition");
  check_int "ring-publish spans = records" n (spans merged "ring-publish");
  check_int "ring-drain spans = records" n (spans merged "ring-drain")

let suite =
  [
    ( "obs.quantiles",
      [
        tc "merge with empty preserves" t_quantiles_merge_empty;
        tc "merge past capacity" t_quantiles_merge_past_capacity;
        tc "seeded determinism" t_quantiles_seed_determinism;
      ] );
    ( "obs.metrics",
      [
        tc "registration idempotent" t_register_idempotent;
        tc "type mismatch rejected" t_register_type_mismatch;
        tc "counters monotone" t_counter_monotone;
        tc "snapshot values" t_snapshot_values;
        tc "snapshot isolated from later writes" t_snapshot_isolated;
        tc "merge round-trip" t_merge_round_trip;
        tc "merge type mismatch rejected" t_merge_type_mismatch;
        q_merge_totals;
        q_merge_histogram_buckets;
      ] );
    ( "obs.trace",
      [
        tc "ring wraparound keeps last N" t_ring_wraparound;
        tc "under capacity + clear" t_ring_under_capacity;
        tc "capacity validated" t_ring_capacity_validated;
        tc "dump sinks isolated and ordered" t_dump_sinks;
        tc "entry json" t_entry_json;
      ] );
    ( "obs.export",
      [
        tc "prometheus exposition" t_prometheus_format;
        tc "jsonl and json" t_jsonl_and_json;
        tc "write picks format by extension" t_write_by_extension;
        tc "json helpers" t_json_helpers;
      ] );
    ( "obs.engine",
      [
        tc "telemetry is write-only (digest)" t_telemetry_is_write_only;
        tc "registry mirrors engine counters" t_counters_match_engine;
        tc "quarantine dumps the flight recorder" t_quarantine_dumps_flight_recorder;
      ] );
    ( "obs.shard",
      [ tc "merged totals equal sequential" t_sharded_totals_equal_sequential ] );
    ( "obs.prof",
      [
        tc "self time excludes nested children" t_prof_self_time;
        tc "mismatch and overflow guards" t_prof_guards;
        tc "span pops on raise" t_prof_span_protects;
        tc "stage names round-trip" t_prof_stage_names;
        tc "sampled spans reach the flight recorder" t_prof_flight_sampling;
        q_prof_digest_transparent;
        tc "exports carry stage and gc rows" t_prof_export_formats;
        tc "shard merge sums per-stage spans" t_prof_shard_merge;
      ] );
  ]
