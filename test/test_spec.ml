(* Tests for the .vspec front end: positioned diagnostics on malformed
   specs (one fixture per diagnostic class), the parse/print round-trip
   property, freshness of the shipped example specs against the
   unelaborator, and digest transparency of DSL-loaded overrides. *)

module A = Spec.Ast
module P = Spec.Printer

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

let sec = Dsim.Time.of_sec

(* ------------------------------------------------------------------ *)
(* Malformed specs: one fixture per diagnostic class                   *)
(* ------------------------------------------------------------------ *)

(* Each fixture seeds exactly one defect and asserts the diagnostic
   class plus the exact 1-based line:col the front end reports — the
   positions a user would click on.  [Speclint.ok = false] is what makes
   [vids-cli lint] exit nonzero. *)

let lint_src src =
  Analyze.Speclint.lint_sources ~externs:Spec.Elaborate.no_externs
    [ ("fixture.vspec", src) ]

let expect_error ~code ~line ~col src () =
  let r = lint_src src in
  check "lint rejects" false (Analyze.Speclint.ok r);
  check "front-end errors" true (Spec.Diag.has_errors r.Analyze.Speclint.diags);
  match List.filter Spec.Diag.is_error r.Analyze.Speclint.diags with
  | [] -> Alcotest.fail "no error diagnostics"
  | d :: _ ->
      check_str "diagnostic class" code (Spec.Diag.code_to_string d.Spec.Diag.code);
      check_str "file" "fixture.vspec" d.Spec.Diag.span.Spec.Loc.s.Spec.Loc.file;
      check_int "line" line d.Spec.Diag.span.Spec.Loc.s.Spec.Loc.line;
      check_int "col" col d.Spec.Diag.span.Spec.Loc.s.Spec.Loc.col

let lex_error =
  expect_error ~code:"lex" ~line:3 ~col:3
    "machine M {\n  initial A;\n  ?\n}\n"

let parse_error =
  expect_error ~code:"parse" ~line:2 ~col:11
    "machine M {\n  initial ;\n}\n"

let unbound_var =
  expect_error ~code:"unbound-var" ~line:4 ~col:10
    "machine M {\n  initial A;\n  trans t : A -> A on event e\n    when missing == 1;\n}\n"

let type_mismatch =
  expect_error ~code:"type-mismatch" ~line:5 ~col:15
    "machine M {\n  var n : int;\n  initial A;\n  trans t : A -> A on event e\n    do { n := \"hello\"; }\n}\n"

let dup_state =
  expect_error ~code:"dup-state" ~line:4 ~col:3
    "machine M {\n  initial A;\n  final B;\n  attack B \"boom\";\n}\n"

let unknown_sync =
  expect_error ~code:"unknown-sync" ~line:4 ~col:10
    "machine M {\n  initial A;\n  trans t : A -> A on event e\n    do { sync NOPE.go(); }\n}\n"

(* A broken machine in a batch does not hide a clean one. *)
let batch_isolation () =
  let broken = "machine BAD {\n  initial ;\n}\n" in
  let clean = "machine OK {\n  initial A;\n  trans t : A -> A on event e;\n}\n" in
  let r =
    Analyze.Speclint.lint_sources ~externs:Spec.Elaborate.no_externs
      [ ("broken.vspec", broken); ("clean.vspec", clean) ]
  in
  check "batch still rejects" false (Analyze.Speclint.ok r);
  check_int "clean machine loads" 1 (List.length r.Analyze.Speclint.loaded);
  check_str "the clean one" "OK"
    (List.hd r.Analyze.Speclint.loaded).Spec.Front_end.l_name

(* ------------------------------------------------------------------ *)
(* Round trip: parse . print = id                                      *)
(* ------------------------------------------------------------------ *)

(* Identifier pools avoid the contextual keywords (if, sync, in, do,
   when, true, ...) the grammar gives special meaning. *)
let var_pool = [ "x"; "y"; "count"; "rate"; "seen" ]
let state_pool = [ "IDLE"; "SETUP"; "UP"; "TEARDOWN"; "ALARM" ]
let label_pool = [ "go"; "stop"; "ring"; "drop"; "reset"; "t1" ]
let name_pool = [ "ping"; "pong"; "tick"; "media" ]
let machine_pool = [ "M0"; "M1"; "RTP" ]
let field_pool = [ "from"; "tag"; "seq" ]
let str_pool = [ ""; "a"; "b c"; "x\"y"; "line\nbreak"; "tab\there" ]

let dexp e = { A.e; e_span = Spec.Loc.dummy }
let dact a = { A.a; a_span = Spec.Loc.dummy }

let lit_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> A.L_int n) (int_range (-5) 40);
        map (fun s -> A.L_str s) (oneofl str_pool);
        map (fun b -> A.L_bool b) bool;
        return A.L_unset;
      ])

let binop_gen =
  QCheck.Gen.oneofl
    [
      A.B_and; A.B_or; A.B_eq; A.B_ne; A.B_lt; A.B_le; A.B_gt; A.B_ge; A.B_ieq;
      A.B_ine; A.B_add; A.B_sub;
    ]

let rec exp_gen n =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map (fun l -> dexp (A.Lit l)) lit_gen;
        map (fun v -> dexp (A.Ident v)) (oneofl var_pool);
        map (fun f -> dexp (A.Fieldref f)) (oneofl field_pool);
        map (fun e -> dexp (A.Extern_ref e)) (oneofl [ "is_spam"; "p_ext" ]);
      ]
  in
  if n = 0 then atom
  else
    frequency
      [
        (3, atom);
        (1, map (fun e -> dexp (A.Not e)) (exp_gen (n - 1)));
        ( 2,
          map3
            (fun op a b -> dexp (A.Bin (op, a, b)))
            binop_gen (exp_gen (n - 1)) (exp_gen (n - 1)) );
        ( 1,
          map2
            (fun e lits -> dexp (A.In_set (e, lits)))
            (exp_gen (n - 1))
            (list_size (int_range 1 3) lit_gen) );
        ( 1,
          map2
            (fun f args -> dexp (A.Call (f, args)))
            (oneofl [ "addr"; "host"; "int"; "int0"; "has"; "f" ])
            (list_size (int_range 0 2) (exp_gen (n - 1))) );
      ]

let rec act_gen n =
  let open QCheck.Gen in
  let base =
    oneof
      [
        map2 (fun v e -> dact (A.Assign (v, e))) (oneofl var_pool) (exp_gen 2);
        map3
          (fun target event args -> dact (A.Sync { target; event; args }))
          (oneofl machine_pool) (oneofl name_pool)
          (list_size (int_range 0 2) (pair (oneofl [ "k0"; "k1" ]) (exp_gen 1)));
        map2
          (fun id d -> dact (A.Set_timer (id, d)))
          (oneofl label_pool)
          (oneofl [ 0; 7; 40_000; 250_000; 1_000_000; 10_000_000 ]);
        map (fun id -> dact (A.Cancel_timer id)) (oneofl label_pool);
        map (fun nm -> dact (A.Extern_act nm)) (oneofl [ "advance_baseline"; "a_ext" ]);
      ]
  in
  if n = 0 then base
  else
    frequency
      [
        (4, base);
        ( 1,
          map3
            (fun p t e -> dact (A.If (p, t, e)))
            (exp_gen 2)
            (list_size (int_range 0 2) (act_gen (n - 1)))
            (list_size (int_range 0 2) (act_gen (n - 1))) );
      ]

let ty_gen =
  QCheck.Gen.(
    oneof
      [
        oneofl [ A.T_int; A.T_bool; A.T_str; A.T_addr ];
        map (fun l -> A.T_enum l) (list_size (int_range 1 3) lit_gen);
      ])

let item_gen =
  let open QCheck.Gen in
  frequency
    [
      ( 2,
        map3
          (fun v_name v_scope v_ty ->
            A.I_var { v_name; v_scope; v_ty; v_span = Spec.Loc.dummy })
          (oneofl var_pool)
          (oneofl [ A.S_local; A.S_global ])
          ty_gen );
      (1, map (fun s -> A.I_initial (s, Spec.Loc.dummy)) (oneofl state_pool));
      ( 1,
        map
          (fun ss -> A.I_final (List.map (fun s -> (s, Spec.Loc.dummy)) ss))
          (list_size (int_range 1 3) (oneofl state_pool)) );
      ( 1,
        map2
          (fun at_state at_desc ->
            A.I_attack { at_state; at_desc; at_span = Spec.Loc.dummy })
          (oneofl state_pool) (oneofl str_pool) );
      ( 3,
        map
          (fun ((t_label, (t_from, t_to)), ((kind, name), (t_guard, t_acts))) ->
            A.I_trans
              {
                A.t_label;
                t_from;
                t_to;
                t_trigger = (kind, name);
                t_guard;
                t_acts;
                t_span = Spec.Loc.dummy;
              })
          (pair
             (pair (oneofl label_pool) (pair (oneofl state_pool) (oneofl state_pool)))
             (pair
                (pair
                   (oneofl [ A.Tg_event; A.Tg_channel; A.Tg_sync; A.Tg_timer ])
                   (oneofl name_pool))
                (pair (opt (exp_gen 3)) (list_size (int_range 0 3) (act_gen 1))))) );
    ]

let file_gen =
  QCheck.Gen.(
    list_size (int_range 1 2)
      (map2
         (fun m_name m_items -> { A.m_name; m_items; m_span = Spec.Loc.dummy })
         (oneofl machine_pool)
         (list_size (int_range 0 6) item_gen)))

let round_trip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"vspec: parse . print = id" ~count:300
       (QCheck.make ~print:P.print_file file_gen)
       (fun file ->
         let printed = P.print_file file in
         let parsed, diags = Spec.Parser.parse ~file:"gen.vspec" printed in
         diags = [] && A.equal_file file parsed))

(* ------------------------------------------------------------------ *)
(* Shipped example specs                                               *)
(* ------------------------------------------------------------------ *)

let builtin_files =
  [
    ("sip-call", "sip_call");
    ("rtp-call", "rtp_call");
    ("invite-flood", "invite_flood");
    ("media-spam", "media_spam");
    ("drdos", "drdos");
  ]

let example_path base = Printf.sprintf "../examples/specs/%s.vspec" base

let read_file path =
  match Spec.Front_end.read_file path with
  | Ok s -> s
  | Error e -> Alcotest.fail e

(* The shipped files are exactly [lint --emit]'s canonical print of the
   builtins: regenerating them after a machine change is a test failure,
   not a silent drift. *)
let emitted_specs_fresh () =
  List.iter
    (fun (key, base) ->
      let spec, decls =
        match Vids.Spec_load.builtin_for Vids.Config.default key with
        | Some sd -> sd
        | None -> Alcotest.failf "no builtin %s" key
      in
      let expected = P.print_machine (P.of_machine spec decls) in
      check_str (base ^ ".vspec is fresh") expected (read_file (example_path base)))
    builtin_files

let examples_lint_clean () =
  let files = List.map (fun (_, b) -> example_path b) builtin_files in
  match
    Analyze.Speclint.lint_files ~known_machines:Vids.Spec_load.known_machines
      ~externs:(Vids.Spec_load.externs Vids.Config.default)
      files
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
      check "examples lint clean" true (Analyze.Speclint.ok r);
      check_int "all five load" 5 (List.length r.Analyze.Speclint.loaded);
      (* Verifier findings on loaded specs point back into the source. *)
      let findings = Analyze.Verifier.all_findings r.Analyze.Speclint.report in
      check "findings carry source spans" true
        (List.exists (fun f -> f.Analyze.Finding.span <> None) findings);
      check "rendered findings name the file" true
        (List.exists
           (fun f ->
             match f.Analyze.Finding.span with
             | Some sp ->
                 Filename.check_suffix sp.Spec.Loc.s.Spec.Loc.file ".vspec"
             | None -> false)
           findings)

(* ------------------------------------------------------------------ *)
(* Digest transparency of DSL-loaded overrides                         *)
(* ------------------------------------------------------------------ *)

(* The same goldens as test_analyze's digest_transparency: running the
   full eight-attack scenario with all five machines loaded from
   [.vspec] text must reproduce the builtin engine bit for bit. *)
let golden_alert_digest = "5042aef8b47acb330344d71f93363369"
let golden_engine_digest = "2c0697a823b6fd8e149cdfd513a0242a"

let dsl_digest_transparency () =
  let module T = Voip.Testbed in
  let overrides =
    match
      Vids.Spec_load.load_files Vids.Config.default
        (List.map (fun (_, b) -> example_path b) builtin_files)
    with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  check_int "five overrides" 5 (List.length overrides);
  let all_attacks =
    [
      "bye-dos"; "cancel-dos"; "hijack"; "media-spam"; "billing-fraud"; "invite-flood";
      "rtp-flood"; "drdos";
    ]
  in
  let tb = T.make ~seed:42 ~vids:T.Monitor ~overrides () in
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  let ua_a n = List.nth tb.T.uas_a n and ua_b n = List.nth tb.T.uas_b n in
  List.iteri
    (fun i name ->
      let at = sec (5.0 +. (25.0 *. float_of_int i)) in
      let pair = i mod 8 in
      match name with
      | "bye-dos" -> Attack.Scenarios.spoofed_bye_call atk ~caller:(ua_a pair) ~callee:(ua_b pair) ~at
      | "cancel-dos" ->
          Attack.Scenarios.cancel_dos_call atk ~caller:(ua_a pair) ~callee:(ua_b pair) ~at
      | "hijack" -> Attack.Scenarios.hijack_call atk ~caller:(ua_a pair) ~callee:(ua_b pair) ~at
      | "media-spam" ->
          Attack.Scenarios.media_spam_call atk ~caller:(ua_a pair) ~callee:(ua_b pair) ~at
      | "billing-fraud" ->
          Attack.Scenarios.billing_fraud_call atk ~caller:(ua_a pair) ~callee:(ua_b pair) ~at
      | "invite-flood" ->
          Attack.Scenarios.invite_flood atk ~target:(Voip.Ua.aor (ua_b pair)) ~via_proxy:true
            ~count:25 ~interval:(Dsim.Time.of_ms 40.0) ~at
      | "rtp-flood" ->
          Attack.Scenarios.rtp_flood atk
            ~target:(Dsim.Addr.v (T.ua_b_host tb pair) 16500)
            ~rate_pps:400 ~duration:(sec 2.0) ~at
      | "drdos" ->
          Attack.Scenarios.drdos atk ~victim_host:(T.ua_b_host tb pair) ~reflectors:20
            ~responses:60 ~at
      | _ -> assert false)
    all_attacks;
  let horizon = sec (40.0 +. (25.0 *. float_of_int (List.length all_attacks))) in
  T.run_until tb horizon;
  let engine = T.engine_exn tb in
  let lines =
    List.map
      (fun (a : Vids.Alert.t) ->
        Printf.sprintf "%s|%s|%d|%s|%s"
          (Vids.Alert.kind_to_string a.Vids.Alert.kind)
          (Vids.Alert.severity_to_string a.Vids.Alert.severity)
          (Dsim.Time.to_us a.Vids.Alert.at) a.Vids.Alert.subject a.Vids.Alert.detail)
      (Vids.Engine.alerts engine)
  in
  check_int "all eight attacks alerted" 8 (List.length lines);
  check_str "alert digest matches the builtins" golden_alert_digest
    (Digest.to_hex (Digest.string (String.concat "\n" lines)));
  check_str "engine digest matches the builtins" golden_engine_digest
    (Digest.to_hex (Digest.string (Vids.Snapshot.digest ~at:horizon engine)))

let suite =
  [
    ( "spec.diagnostics",
      [
        tc "lex error positioned" lex_error;
        tc "parse error positioned" parse_error;
        tc "unbound variable positioned" unbound_var;
        tc "type mismatch positioned" type_mismatch;
        tc "duplicate state positioned" dup_state;
        tc "unknown sync target positioned" unknown_sync;
        tc "broken file does not hide clean one" batch_isolation;
      ] );
    ("spec.roundtrip", [ round_trip ]);
    ( "spec.examples",
      [
        tc "emitted specs are fresh" emitted_specs_fresh;
        tc "examples lint clean with spans" examples_lint_clean;
      ] );
    ( "spec.digest",
      [
        Alcotest.test_case "DSL overrides are digest-transparent" `Slow
          dsl_digest_transparency;
      ] );
  ]
