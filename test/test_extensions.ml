(* Tests for the extensions built on top of the paper's core: offline trace
   capture/replay, report rendering, registration-hijack detection, and
   EFSM static analysis. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let tc name f = Alcotest.test_case name `Quick f

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

module T = Voip.Testbed

let sec = Dsim.Time.of_sec

(* ------------------------------------------------------------------ *)
(* Trace format                                                        *)
(* ------------------------------------------------------------------ *)

let sample_record =
  {
    Vids.Trace.at = Dsim.Time.of_ms 123.456;
    src = Dsim.Addr.v "10.1.0.10" 16384;
    dst = Dsim.Addr.v "10.2.0.10" 20000;
    payload = "\x80\x12binary\xff\x00payload";
  }

let trace_line_roundtrip () =
  let line = Vids.Trace.record_to_line sample_record in
  let back = ok (Vids.Trace.record_of_line line) in
  check "roundtrip" true (back = sample_record)

let trace_empty_payload () =
  let r = { sample_record with Vids.Trace.payload = "" } in
  check "empty payload roundtrips" true
    (ok (Vids.Trace.record_of_line (Vids.Trace.record_to_line r)) = r)

let trace_bad_lines () =
  check "garbage" true (Result.is_error (Vids.Trace.record_of_line "not a record"));
  check "bad hex" true
    (Result.is_error (Vids.Trace.record_of_line "1 a:1 b:2 zz"));
  check "odd hex" true (Result.is_error (Vids.Trace.record_of_line "1 a:1 b:2 abc"));
  check "bad addr" true (Result.is_error (Vids.Trace.record_of_line "1 nope b:2 ab"))

let trace_file_roundtrip () =
  let path = Filename.temp_file "vids" ".trace" in
  let records = [ sample_record; { sample_record with Vids.Trace.at = Dsim.Time.of_sec 2.0 } ] in
  let oc = open_out path in
  Vids.Trace.save oc records;
  close_out oc;
  let ic = open_in path in
  let loaded = ok (Vids.Trace.load ic) in
  close_in ic;
  Sys.remove path;
  check "loaded equals saved" true (loaded = records)

(* Capture a live attack at the sensor, replay the trace offline, and get
   the same verdict. *)
let trace_replay_reproduces_alerts () =
  let tb = T.make ~seed:41 ~n_ua:2 ~vids:T.Off () in
  let recorder = Vids.Trace.recorder () in
  Dsim.Network.set_tap tb.T.vids_node (Some (Vids.Trace.tap recorder tb.T.sched));
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  Attack.Scenarios.spoofed_bye_call atk ~caller:(List.hd tb.T.uas_a)
    ~callee:(List.hd tb.T.uas_b) ~at:(sec 2.0);
  T.run_until tb (sec 40.0);
  let records = Vids.Trace.records recorder in
  check "trace captured" true (List.length records > 100);
  let engine = Vids.Trace.replay records in
  check_int "bye dos found offline" 1
    (List.length (Vids.Engine.alerts_of_kind engine Vids.Alert.Bye_dos));
  (* Timers behaved under virtual time: the alert is after the BYE. *)
  (match Vids.Engine.alerts_of_kind engine Vids.Alert.Bye_dos with
  | [ alert ] -> check "virtual time sane" true Dsim.Time.(alert.Vids.Alert.at > sec 6.0)
  | _ -> Alcotest.fail "expected one alert");
  (* Replay is insensitive to record order. *)
  let shuffled = List.rev records in
  let engine2 = Vids.Trace.replay shuffled in
  check_int "order-insensitive" 1
    (List.length (Vids.Engine.alerts_of_kind engine2 Vids.Alert.Bye_dos))

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let report_rendering () =
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create sched in
  let empty = Vids.Report.to_string Vids.Report.full engine in
  check "empty report mentions no alerts" true (contains ~needle:"no alerts." empty);
  (* Inject a malformed message to generate one alert. *)
  let alloc = Dsim.Packet.allocator () in
  Vids.Engine.process_packet engine
    (Dsim.Packet.make alloc ~src:(Dsim.Addr.v "x" 5060) ~dst:(Dsim.Addr.v "y" 5060) ~sent_at:0
       "garbage");
  let rendered = Vids.Report.to_string Vids.Report.full engine in
  check "summary counters" true (contains ~needle:"1 malformed" rendered);
  check "groups by kind" true (contains ~needle:"spec-deviation (1):" rendered);
  check "severity counted" true (contains ~needle:"1 warning" rendered)

(* ------------------------------------------------------------------ *)
(* Registration hijack                                                 *)
(* ------------------------------------------------------------------ *)

let register_hijack_detected () =
  let tb = T.make ~seed:42 ~n_ua:2 ~vids:T.Monitor () in
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  Attack.Scenarios.register_hijack atk ~victim:(List.hd tb.T.uas_b) ~at:(sec 2.0);
  T.run_until tb (sec 10.0);
  let alerts =
    Vids.Engine.alerts_of_kind (T.engine_exn tb) Vids.Alert.Registration_hijack
  in
  check_int "hijack flagged" 1 (List.length alerts);
  (match alerts with
  | [ a ] ->
      check_str "subject is victim aor" "b1@b.example" a.Vids.Alert.subject;
      check "warning severity" true (a.Vids.Alert.severity = Vids.Alert.Warning)
  | _ -> ());
  (* And the attack worked at the registrar: the binding moved. *)
  check "binding redirected" true
    (Voip.Location.lookup (Voip.Proxy.location tb.T.proxy_b) ~aor:"b1@b.example"
    = Some (Dsim.Addr.v "203.0.113.66" 5060))

let internal_registers_not_flagged () =
  (* The UAs' own registrations stay inside each LAN and never cross the
     sensor: no registration alerts on a clean start. *)
  let tb = T.make ~seed:43 ~n_ua:4 ~vids:T.Monitor () in
  T.run_until tb (sec 5.0);
  check_int "no registration alerts" 0
    (List.length (Vids.Engine.alerts_of_kind (T.engine_exn tb) Vids.Alert.Registration_hijack))

let register_flag_can_be_disabled () =
  let config = { Vids.Config.default with Vids.Config.flag_boundary_register = false } in
  let tb = T.make ~seed:44 ~n_ua:2 ~vids:T.Monitor ~config () in
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  Attack.Scenarios.register_hijack atk ~victim:(List.hd tb.T.uas_b) ~at:(sec 2.0);
  T.run_until tb (sec 10.0);
  check_int "flag disabled" 0
    (List.length (Vids.Engine.alerts_of_kind (T.engine_exn tb) Vids.Alert.Registration_hijack))

(* ------------------------------------------------------------------ *)
(* EFSM static analysis                                                *)
(* ------------------------------------------------------------------ *)

let tr = Efsm.Machine.transition

let analysis_flags_unreachable () =
  let spec =
    {
      Efsm.Machine.spec_name = "broken";
      initial = "A";
      finals = [ "Z" ];
      attack_states = [ ("X", "boom") ];
      transitions =
        [
          tr ~label:"ab" ~from_state:"A" (Efsm.Machine.On_event "e") ~to_state:"B" ();
          (* X and Z only reachable from orphaned state Q. *)
          tr ~label:"qx" ~from_state:"Q" (Efsm.Machine.On_event "e") ~to_state:"X" ();
          tr ~label:"qz" ~from_state:"Q" (Efsm.Machine.On_event "e") ~to_state:"Z" ();
        ];
    }
  in
  let r = Efsm.Analysis.analyze spec in
  Alcotest.(check (list string)) "reachable" [ "A"; "B" ] r.Efsm.Analysis.reachable;
  Alcotest.(check (list string))
    "unreachable attacks" [ "X" ] r.Efsm.Analysis.unreachable_attacks;
  check "finals unreachable" false r.Efsm.Analysis.finals_reachable;
  Alcotest.(check (list string)) "dead ends" [ "B" ] r.Efsm.Analysis.dead_ends;
  check "verifier rejects" true
    (Analyze.Verifier.machine_errors (Analyze.Verifier.verify_spec spec) <> [])

let analysis_accepts_paper_machines () =
  List.iter
    (fun (spec, vars) ->
      match Analyze.Verifier.machine_errors (Analyze.Verifier.verify_spec ~vars spec) with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "verifier rejected %s: %s" spec.Efsm.Machine.spec_name
            (Analyze.Finding.to_string f))
    [
      (Vids.Sip_call_machine.spec Vids.Config.default, Vids.Sip_call_machine.vars);
      (Vids.Rtp_call_machine.spec Vids.Config.default, Vids.Rtp_call_machine.vars);
      (Vids.Invite_flood_machine.spec Vids.Config.default, Vids.Invite_flood_machine.vars);
      (Vids.Media_spam_machine.spec Vids.Config.default, Vids.Media_spam_machine.vars);
      (Vids.Drdos_machine.spec Vids.Config.default, Vids.Drdos_machine.vars);
    ]

let suite =
  [
    ( "ext.trace",
      [
        tc "line roundtrip" trace_line_roundtrip;
        tc "empty payload" trace_empty_payload;
        tc "bad lines" trace_bad_lines;
        tc "file roundtrip" trace_file_roundtrip;
        tc "capture + offline replay" trace_replay_reproduces_alerts;
      ] );
    ("ext.report", [ tc "rendering" report_rendering ]);
    ( "ext.register_hijack",
      [
        tc "detected" register_hijack_detected;
        tc "internal not flagged" internal_registers_not_flagged;
        tc "flag disabled" register_flag_can_be_disabled;
      ] );
    ( "ext.analysis",
      [
        tc "flags unreachable" analysis_flags_unreachable;
        tc "accepts paper machines" analysis_accepts_paper_machines;
      ] );
  ]
