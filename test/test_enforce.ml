(* Prevention-mode tests: the block table's determinism contract (TTL
   boundaries, token buckets, refresh semantics), the qcheck property
   that checkpoint ∘ crash ∘ recover preserves the table — rules, TTLs
   and bucket levels — and the enforcer end-to-end: an INVITE flood
   blocked at the gate while a bystander still passes. *)

let q ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let us = Dsim.Time.of_us
let sec = Dsim.Time.of_sec

module BT = Enforce.Block_table
module SK = Enforce.Source_key

let addr host port = Dsim.Addr.v host port

let check_verdict msg expected got =
  let show = function
    | BT.Pass -> "Pass"
    | BT.Blocked _ -> "Blocked"
    | BT.Limited _ -> "Limited"
    | BT.Locked -> "Locked"
  in
  Alcotest.(check string) msg (show expected) (show got)

(* ------------------------------------------------------------------ *)
(* Source_key                                                          *)
(* ------------------------------------------------------------------ *)

let test_source_key_normalize () =
  Alcotest.(check string)
    "host lowercased" "proxy.example"
    (SK.to_string (SK.host "Proxy.EXAMPLE"));
  Alcotest.(check bool)
    "case-insensitive equal" true
    (SK.equal (SK.host "A.example") (SK.host "a.EXAMPLE"));
  Alcotest.(check bool)
    "endpoint carries the port" true
    (SK.equal (SK.of_addr (addr "10.0.0.1" 5060)) (SK.endpoint "10.0.0.1" 5060));
  Alcotest.(check string)
    "host_of_addr drops the port" "10.0.0.1"
    (SK.to_string (SK.host_of_addr (addr "10.0.0.1" 5060)))

let key_gen =
  QCheck.Gen.(
    let host =
      oneof
        [
          map
            (fun (a, b) -> Printf.sprintf "10.%d.0.%d" a b)
            (pair (int_range 0 255) (int_range 1 254));
          map (fun n -> Printf.sprintf "ua%d.example" n) (int_range 0 999);
        ]
    in
    oneof
      [
        map SK.host host;
        map2 (fun h p -> SK.endpoint h p) host (int_range 1 65535);
      ])

let key_arb = QCheck.make ~print:SK.to_string key_gen

let prop_source_key_roundtrip =
  q "source_key: of_string (to_string k) = k" key_arb (fun k ->
      match SK.of_string (SK.to_string k) with
      | Ok k' -> SK.equal k k'
      | Error e -> QCheck.Test.fail_reportf "of_string: %s" e)

(* ------------------------------------------------------------------ *)
(* TTL boundaries and refresh semantics                                *)
(* ------------------------------------------------------------------ *)

let attacker = addr "198.51.100.99" 5060
let victim = addr "10.2.0.2" 5060

let test_ttl_boundary () =
  let t = BT.create () in
  let deadline = sec 60.0 in
  (match BT.install t ~now:Dsim.Time.zero (BT.Src (SK.host_of_addr attacker)) BT.Drop
           ~expires_at:deadline ~reason:"test" ()
   with
  | BT.Installed -> ()
  | _ -> Alcotest.fail "install refused");
  check_verdict "blocked 1 us before the deadline" (BT.Blocked (Obj.magic 0))
    (BT.decide t ~now:(Dsim.Time.sub deadline (us 1)) ~src:attacker ~dst:victim);
  check_verdict "passes at the deadline" BT.Pass
    (BT.decide t ~now:deadline ~src:attacker ~dst:victim);
  Alcotest.(check int) "expired rule reclaimed" 0 (BT.stats t ~now:deadline).BT.active;
  Alcotest.(check int) "expiry counted" 1 (BT.stats t ~now:deadline).BT.expired

let test_refresh_extends_and_drop_dominates () =
  let t = BT.create () in
  let scope = BT.Src (SK.host_of_addr attacker) in
  ignore
    (BT.install t ~now:Dsim.Time.zero scope
       (BT.Rate_limit { pps = 10; burst = 10 })
       ~expires_at:(sec 30.0) ~reason:"first" ());
  (match
     BT.install t ~now:(sec 1.0) scope BT.Drop ~expires_at:(sec 60.0) ~reason:"second" ()
   with
  | BT.Refreshed -> ()
  | _ -> Alcotest.fail "expected a refresh");
  let r = Option.get (BT.find t scope) in
  Alcotest.(check bool) "deadline extended" true (Dsim.Time.equal r.BT.expires_at (sec 60.0));
  Alcotest.(check bool) "drop dominates" true (r.BT.action = BT.Drop);
  Alcotest.(check string) "original reason stands" "first" r.BT.reason;
  (* The reverse refresh must not weaken a Drop back to a limiter, nor
     shrink the deadline. *)
  ignore
    (BT.install t ~now:(sec 2.0) scope
       (BT.Rate_limit { pps = 1; burst = 1 })
       ~expires_at:(sec 40.0) ~reason:"third" ());
  let r = Option.get (BT.find t scope) in
  Alcotest.(check bool) "drop sticky" true (r.BT.action = BT.Drop);
  Alcotest.(check bool) "deadline never shrinks" true
    (Dsim.Time.equal r.BT.expires_at (sec 60.0))

let test_token_bucket () =
  let t = BT.create () in
  ignore
    (BT.install t ~now:Dsim.Time.zero (BT.Src (SK.of_addr attacker))
       (BT.Rate_limit { pps = 10; burst = 3 })
       ~expires_at:(sec 600.0) ~reason:"limit" ());
  let verdicts =
    List.init 5 (fun _ -> BT.decide t ~now:(sec 1.0) ~src:attacker ~dst:victim)
  in
  let passed = List.length (List.filter (fun v -> v = BT.Pass) verdicts) in
  Alcotest.(check int) "burst of 3 passes, rest limited" 3 passed;
  (* 10 pps: 0.2 s refills two tokens. *)
  check_verdict "refilled after 200 ms" BT.Pass
    (BT.decide t ~now:(sec 1.2) ~src:attacker ~dst:victim);
  check_verdict "second refill token" BT.Pass
    (BT.decide t ~now:(sec 1.2) ~src:attacker ~dst:victim);
  check_verdict "then limited again" (BT.Limited (Obj.magic 0))
    (BT.decide t ~now:(sec 1.2) ~src:attacker ~dst:victim)

let test_match_order_drop_before_bucket () =
  let t = BT.create () in
  (* A destination limiter with plenty of tokens plus a source drop: the
     drop must win without charging the bucket. *)
  ignore
    (BT.install t ~now:Dsim.Time.zero (BT.Dst (SK.host_of_addr victim))
       (BT.Rate_limit { pps = 1000; burst = 1000 })
       ~expires_at:(sec 60.0) ~reason:"limit" ());
  ignore
    (BT.install t ~now:Dsim.Time.zero (BT.Src (SK.host_of_addr attacker)) BT.Drop
       ~expires_at:(sec 60.0) ~reason:"drop" ());
  check_verdict "drop outranks a flush bucket" (BT.Blocked (Obj.magic 0))
    (BT.decide t ~now:(sec 1.0) ~src:attacker ~dst:victim);
  check_verdict "other sources still limited, not dropped" BT.Pass
    (BT.decide t ~now:(sec 1.0) ~src:(addr "10.9.9.9" 5060) ~dst:victim)

let test_overflow_and_lockdown () =
  let t = BT.create ~max_rules:2 () in
  let install i =
    BT.install t ~now:Dsim.Time.zero
      (BT.Src (SK.host (Printf.sprintf "h%d.example" i)))
      BT.Drop ~expires_at:(sec 60.0) ~reason:"r" ()
  in
  Alcotest.(check bool) "first fits" true (install 0 = BT.Installed);
  Alcotest.(check bool) "second fits" true (install 1 = BT.Installed);
  Alcotest.(check bool) "third overflows" true (install 2 = BT.Overflow);
  Alcotest.(check int) "overflow counted" 1 (BT.stats t ~now:Dsim.Time.zero).BT.overflowed;
  BT.set_lockdown t true;
  check_verdict "lockdown blocks unmatched traffic" BT.Locked
    (BT.decide t ~now:(sec 1.0) ~src:(addr "10.1.1.1" 1) ~dst:(addr "10.1.1.2" 2))

(* ------------------------------------------------------------------ *)
(* checkpoint ∘ crash ∘ recover preserves the table (qcheck)           *)
(* ------------------------------------------------------------------ *)

(* A random enforcement history: installs at increasing times with
   varying TTLs and actions, a sprinkling of decides to charge buckets
   and accumulate hits. *)
let history_gen =
  QCheck.Gen.(
    list_size (int_range 1 25)
      (triple key_gen
         (oneof
            [
              return `Drop;
              map2 (fun pps burst -> `Rate (pps, burst)) (int_range 1 200) (int_range 1 50);
            ])
         (pair (int_range 0 5_000_000) (* install offset us *)
            (int_range 1 120_000_000) (* ttl us *))))

let history_arb =
  QCheck.make
    ~print:(fun h -> Printf.sprintf "<history of %d installs>" (List.length h))
    history_gen

let build_table history =
  let t = BT.create () in
  let now = ref Dsim.Time.zero in
  List.iteri
    (fun i (key, act, (offset, ttl)) ->
      now := Dsim.Time.add !now (us offset);
      let scope = if i mod 3 = 0 then BT.Dst key else BT.Src key in
      let action =
        match act with
        | `Drop -> BT.Drop
        | `Rate (pps, burst) -> BT.Rate_limit { pps; burst }
      in
      ignore
        (BT.install t ~now:!now scope action
           ~expires_at:(Dsim.Time.add !now (us ttl))
           ~escalate:(i mod 4 = 0) ~reason:(Printf.sprintf "alert-%d" i) ());
      (* Charge some buckets / accumulate hits so the volatile state is
         nonempty when the checkpoint lands. *)
      let h, p =
        match key with SK.Host h -> (h, 5060) | SK.Endpoint (h, p) -> (h, p)
      in
      for _ = 1 to i mod 5 do
        ignore (BT.decide t ~now:!now ~src:(addr h p) ~dst:(addr h p))
      done)
    history;
  (t, !now)

let prop_checkpoint_recover_preserves_table =
  q ~count:300 "block_table: restore (serialize t) preserves rules, TTLs and buckets"
    history_arb (fun history ->
      let t, now = build_table history in
      let payload = BT.serialize t ~now in
      let t' = BT.create () in
      (match BT.restore t' payload with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "restore failed: %s" e);
      (* Volatile state: hits and exact bucket levels round-trip too —
         re-serializing yields the identical payload.  (Checked first:
         reading the table at a later horizon purges lapsed rules, which
         is the point of the next assertion.) *)
      let payload' = BT.serialize t' ~now in
      if not (String.equal payload payload') then
        QCheck.Test.fail_reportf "payload diverged:\nlive:\n%s\nrecovered:\n%s" payload
          payload';
      (* Durable state: digests agree now and at every later instant
         (TTLs expire identically across the crash). *)
      let horizons = [ now; Dsim.Time.add now (sec 1.0); Dsim.Time.add now (sec 400.0) ] in
      List.iter
        (fun h ->
          if not (String.equal (BT.digest t ~now:h) (BT.digest t' ~now:h)) then
            QCheck.Test.fail_reportf "digest diverged at %d:\nlive:\n%s\nrecovered:\n%s"
              (Dsim.Time.to_us h) (BT.serialize t ~now:h) (BT.serialize t' ~now:h))
        horizons;
      true)

let prop_recovered_gate_decides_identically =
  q ~count:300 "block_table: recovered gate = uninterrupted gate, packet for packet"
    QCheck.(pair history_arb (list_of_size (QCheck.Gen.int_range 1 30) key_arb))
    (fun (history, probes) ->
      let t, now = build_table history in
      let t' = BT.create () in
      (match BT.restore t' (BT.serialize t ~now) with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "restore failed: %s" e);
      (* Fire the same probe sequence at both tables and require the
         same verdict every time — this is the property that makes
         crash recovery invisible to the wire. *)
      let i = ref 0 in
      List.for_all
        (fun key ->
          incr i;
          let h, p =
            match key with SK.Host h -> (h, 5060) | SK.Endpoint (h, p) -> (h, p)
          in
          let at = Dsim.Time.add now (us (!i * 10_000)) in
          let src = addr h p and dst = addr "10.2.0.2" 5060 in
          let show = function
            | BT.Pass -> "P"
            | BT.Blocked _ -> "B"
            | BT.Limited _ -> "L"
            | BT.Locked -> "X"
          in
          String.equal
            (show (BT.decide t ~now:at ~src ~dst))
            (show (BT.decide t' ~now:at ~src ~dst)))
        probes)

let test_restore_rejects_garbage () =
  let t = BT.create () in
  ignore
    (BT.install t ~now:Dsim.Time.zero (BT.Src (SK.host "a.example")) BT.Drop
       ~expires_at:(sec 9.0) ~reason:"r" ());
  (match BT.restore t "ENF 1 0\nR S 6161 bogus" with
  | Ok () -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  Alcotest.(check int) "failed restore leaves the table empty" 0
    (BT.stats t ~now:Dsim.Time.zero).BT.active

(* ------------------------------------------------------------------ *)
(* Enforcer end-to-end                                                 *)
(* ------------------------------------------------------------------ *)

let invite ~call_id ~from_host ~callee =
  Printf.sprintf
    "INVITE sip:%s SIP/2.0\r\n\
     Via: SIP/2.0/UDP %s:5060;branch=z9hG4bK%s\r\n\
     From: <sip:mallory@%s>;tag=ta-%s\r\n\
     To: <sip:%s>\r\n\
     Call-ID: %s\r\n\
     CSeq: 1 INVITE\r\n\r\n"
    callee from_host call_id from_host call_id callee call_id

let palloc = Dsim.Packet.allocator ()

let packet ~src ~dst payload =
  Dsim.Packet.make palloc ~src ~dst ~sent_at:Dsim.Time.zero payload

let flood_setup ?policy () =
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create sched in
  let e = Enforce.Enforcer.create ?policy sched engine in
  (sched, engine, e)

let run_flood sched e ~n =
  let src = addr "198.51.100.99" 5060 and dst = victim in
  let delivered = ref 0 in
  for i = 1 to n do
    Dsim.Scheduler.schedule_at sched
      (Dsim.Time.of_ms (float_of_int (100 * i)))
      (fun () ->
        let p =
          packet ~src ~dst
            (invite
               ~call_id:(Printf.sprintf "flood-%d" i)
               ~from_host:"198.51.100.99" ~callee:"victim@b.example")
        in
        if Enforce.Enforcer.ingest e p then incr delivered)
    |> ignore
  done;
  Dsim.Scheduler.run sched;
  !delivered

let test_enforcer_blocks_invite_flood () =
  let sched, engine, e = flood_setup () in
  let delivered = run_flood sched e ~n:40 in
  Alcotest.(check bool) "flood detected" true
    (Vids.Engine.alerts_of_kind engine Vids.Alert.Invite_flood <> []);
  let s = Enforce.Enforcer.stats e in
  Alcotest.(check bool)
    (Printf.sprintf "gate stopped the tail (%d delivered)" delivered)
    true
    (delivered < 40 && s.Enforce.Enforcer.blocked = 40 - delivered);
  (* A bystander from a different host still passes. *)
  Alcotest.(check bool) "bystander passes" true
    (Enforce.Enforcer.ingest e
       (packet ~src:(addr "10.1.0.2" 5060) ~dst:victim
          (invite ~call_id:"legit-1" ~from_host:"10.1.0.2" ~callee:"carol@b.example")));
  (* And the block names only the attacker. *)
  List.iter
    (fun (r : BT.rule) ->
      match r.BT.scope with
      | BT.Src k | BT.Dst k ->
          Alcotest.(check string) "rule names the attacker" "198.51.100.99" (SK.to_string k))
    (BT.rules (Enforce.Enforcer.table e) ~now:(Dsim.Scheduler.now sched))

let test_enforcer_block_expires () =
  let policy = { Enforce.Enforcer.default_policy with Enforce.Enforcer.block_ttl = sec 5.0 } in
  let sched, _engine, e = flood_setup ~policy () in
  let delivered = run_flood sched e ~n:40 in
  Alcotest.(check bool) "blocked during the flood" true (delivered < 40);
  (* 5 s after the last refresh the rule lapses and the source passes
     again — TTL'd containment, not a permanent ban. *)
  Dsim.Scheduler.schedule_at sched (sec 600.0) (fun () -> ()) |> ignore;
  Dsim.Scheduler.run sched;
  Alcotest.(check bool) "block lapsed after its TTL" true
    (Enforce.Enforcer.ingest e
       (packet ~src:(addr "198.51.100.99" 5060) ~dst:victim
          (invite ~call_id:"postban-1" ~from_host:"198.51.100.99" ~callee:"late@b.example")))

let test_journal_replay_is_scheduled () =
  (* A journaled install applied during recovery must not block replayed
     packets that predate it: apply_journal schedules the rule at its
     recorded time instead of installing it immediately. *)
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create sched in
  let e = Enforce.Enforcer.create sched engine in
  let line =
    let t = BT.create () in
    ignore
      (BT.install t ~now:(sec 2.0) (BT.Src (SK.host "198.51.100.99")) BT.Drop
         ~expires_at:(sec 62.0) ~reason:"INVITE-flood" ());
    BT.rule_to_line (Option.get (BT.find t (BT.Src (SK.host "198.51.100.99"))))
  in
  Enforce.Enforcer.apply_journal e ~at:(sec 2.0) ~payload:line;
  let verdict_at at =
    Dsim.Scheduler.schedule_at sched at (fun () ->
        ignore
          (Enforce.Enforcer.ingest e
             (packet ~src:(addr "198.51.100.99" 5060) ~dst:victim
                (invite ~call_id:(Printf.sprintf "t-%d" at) ~from_host:"198.51.100.99"
                   ~callee:"x@b.example"))))
    |> ignore
  in
  verdict_at (sec 1.0);
  verdict_at (sec 3.0);
  Dsim.Scheduler.run sched;
  let s = Enforce.Enforcer.stats e in
  Alcotest.(check int) "packet before the journaled install passed" 1
    s.Enforce.Enforcer.passed;
  Alcotest.(check int) "packet after it was blocked" 1 s.Enforce.Enforcer.blocked

let test_fail_closed_on_corrupt_restore () =
  let open_policy = Enforce.Enforcer.default_policy in
  let closed_policy = { open_policy with Enforce.Enforcer.fail_closed = true } in
  let probe e =
    Enforce.Enforcer.ingest e
      (packet ~src:(addr "10.1.0.2" 5060) ~dst:victim
         (invite ~call_id:"probe" ~from_host:"10.1.0.2" ~callee:"p@b.example"))
  in
  let _, _, open_e = flood_setup ~policy:open_policy () in
  (match Enforce.Enforcer.restore open_e ~payload:"garbage" with
  | Ok () -> Alcotest.fail "corrupt payload accepted"
  | Error _ -> ());
  Alcotest.(check bool) "fail-open: detection continues" true (probe open_e);
  let _, _, closed_e = flood_setup ~policy:closed_policy () in
  (match Enforce.Enforcer.restore closed_e ~payload:"garbage" with
  | Ok () -> Alcotest.fail "corrupt payload accepted"
  | Error _ -> ());
  Alcotest.(check bool) "fail-closed: gate locks down" false (probe closed_e);
  Alcotest.(check bool) "lockdown flagged" true
    (BT.lockdown (Enforce.Enforcer.table closed_e))

let suite =
  [
    ( "enforce.source_key",
      [
        Alcotest.test_case "normalization and addr projection" `Quick
          test_source_key_normalize;
        prop_source_key_roundtrip;
      ] );
    ( "enforce.table",
      [
        Alcotest.test_case "TTL boundary: blocked at T-1us, free at T" `Quick
          test_ttl_boundary;
        Alcotest.test_case "refresh extends, Drop dominates" `Quick
          test_refresh_extends_and_drop_dominates;
        Alcotest.test_case "token bucket charges and refills" `Quick test_token_bucket;
        Alcotest.test_case "drop outranks limiter" `Quick test_match_order_drop_before_bucket;
        Alcotest.test_case "overflow and lockdown" `Quick test_overflow_and_lockdown;
        Alcotest.test_case "restore is total on garbage" `Quick test_restore_rejects_garbage;
      ] );
    ( "enforce.recovery",
      [
        prop_checkpoint_recover_preserves_table;
        prop_recovered_gate_decides_identically;
      ] );
    ( "enforce.e2e",
      [
        Alcotest.test_case "INVITE flood blocked at the gate" `Quick
          test_enforcer_blocks_invite_flood;
        Alcotest.test_case "block lapses after its TTL" `Quick test_enforcer_block_expires;
        Alcotest.test_case "journaled installs replay at their time" `Quick
          test_journal_replay_is_scheduled;
        Alcotest.test_case "fail-open vs fail-closed on corrupt state" `Quick
          test_fail_closed_on_corrupt_restore;
      ] );
  ]
