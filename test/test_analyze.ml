(* The static spec verifier: deliberately broken fixtures per pass, the
   shipped specs verifying clean, compiled-vs-interpreted IR equivalence,
   and digest transparency of the IR migration. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

module M = Efsm.Machine
module I = Efsm.Ir
module Env = Efsm.Env
module V = Efsm.Value
module Verifier = Analyze.Verifier
module Finding = Analyze.Finding

let sec = Dsim.Time.of_sec

let contains msg grep =
  let n = String.length grep in
  let rec at i = i + n <= String.length msg && (String.sub msg i n = grep || at (i + 1)) in
  at 0

let has_error_in ~pass ~grep findings =
  List.exists
    (fun (f : Finding.t) ->
      f.Finding.severity = Finding.Error
      && String.equal f.Finding.pass pass
      && contains f.Finding.message grep)
    findings

(* ------------------------------------------------------------------ *)
(* Broken fixtures: each verifier pass must flag its planted defect     *)
(* ------------------------------------------------------------------ *)

let field_n = I.Int_of (I.Field "n")

(* Two guards on the same (state, trigger) that both hold for n in 5..10. *)
let nondeterministic_fixture () =
  let spec =
    {
      M.spec_name = "FIX_NONDET";
      initial = "S0";
      finals = [ "S1" ];
      attack_states = [];
      transitions =
        [
          M.ir_transition ~label:"low" ~from_state:"S0" (M.On_event "e") ~to_state:"S1"
            ~guard:(I.Cmp (I.Le, field_n, I.Int_const 10))
            ();
          M.ir_transition ~label:"high" ~from_state:"S0" (M.On_event "e") ~to_state:"S1"
            ~guard:(I.Cmp (I.Ge, field_n, I.Int_const 5))
            ();
        ];
    }
  in
  let r = Verifier.verify_spec spec in
  check_bool "nondeterminism found" true
    (has_error_in ~pass:"determinism" ~grep:"not disjoint" r.Verifier.findings);
  check_bool "not discharged" false r.Verifier.determinism_discharged;
  check_int "one pair checked" 1 r.Verifier.pairs_checked

(* A δ message nobody receives: the FIFO coupling would grow forever. *)
let orphan_sync_fixture () =
  let sender =
    {
      M.spec_name = "FIX_A";
      initial = "S0";
      finals = [ "S1" ];
      attack_states = [];
      transitions =
        [
          M.ir_transition ~label:"send" ~from_state:"S0" (M.On_event "e") ~to_state:"S1"
            ~acts:[ I.Send_sync { target = "FIX_B"; event_name = "delta_x"; args = [] } ]
            ();
        ];
    }
  in
  let receiver =
    {
      M.spec_name = "FIX_B";
      initial = "S0";
      finals = [ "S1" ];
      attack_states = [];
      transitions =
        [ M.ir_transition ~label:"go" ~from_state:"S0" (M.On_event "f") ~to_state:"S1" () ];
    }
  in
  let report = Verifier.verify_system [ (sender, []); (receiver, []) ] in
  check_bool "orphan send found" true
    (has_error_in ~pass:"sync" ~grep:"orphan Send_sync" report.Verifier.system_findings);
  (* Same send with a live receiver is clean. *)
  let receiver_ok =
    {
      receiver with
      M.transitions =
        receiver.M.transitions
        @ [ M.ir_transition ~label:"recv" ~from_state:"S0" (M.On_sync "delta_x") ~to_state:"S1" () ];
    }
  in
  let report = Verifier.verify_system [ (sender, []); (receiver_ok, []) ] in
  check_bool "live receiver accepted" false (Verifier.has_errors report)

(* A guard reads a local variable no transition ever assigns. *)
let uninitialized_read_fixture () =
  let spec =
    {
      M.spec_name = "FIX_UNINIT";
      initial = "S0";
      finals = [ "S1" ];
      attack_states = [];
      transitions =
        [
          M.ir_transition ~label:"go" ~from_state:"S0" (M.On_event "e") ~to_state:"S1"
            ~guard:(I.Eq (I.Var (Env.Local, "l_ghost"), I.Const (V.Str "x")))
            ();
        ];
    }
  in
  let r = Verifier.verify_spec spec in
  check_bool "uninitialized read found" true
    (has_error_in ~pass:"variables" ~grep:"before any assignment" r.Verifier.findings)

(* Set_timer with no On_timer expiry transition anywhere. *)
let dangling_timer_fixture () =
  let spec =
    {
      M.spec_name = "FIX_TIMER";
      initial = "S0";
      finals = [ "S1" ];
      attack_states = [];
      transitions =
        [
          M.ir_transition ~label:"arm" ~from_state:"S0" (M.On_event "e") ~to_state:"S1"
            ~acts:[ I.Set_timer { id = "T_void"; delay = sec 1.0 } ]
            ();
        ];
    }
  in
  let r = Verifier.verify_spec spec in
  check_bool "dangling timer found" true
    (has_error_in ~pass:"timers" ~grep:"fires into the void" r.Verifier.findings)

(* An attack state only its own self-loop mentions: no path can enter it,
   so the pattern it encodes can never raise an alert. *)
let unreachable_attack_fixture () =
  let spec =
    {
      M.spec_name = "FIX_UNREACH";
      initial = "S0";
      finals = [ "S1" ];
      attack_states = [ ("ATK", "planted but unreachable") ];
      transitions =
        [
          M.ir_transition ~label:"go" ~from_state:"S0" (M.On_event "e") ~to_state:"S1" ();
          M.ir_transition ~label:"atk_more" ~from_state:"ATK" (M.On_event "e") ~to_state:"ATK" ();
        ];
    }
  in
  let r = Verifier.verify_spec spec in
  check_bool "unreachable attack found" true
    (has_error_in ~pass:"reachability" ~grep:"attack state is unreachable" r.Verifier.findings)

(* A guard that can never hold prunes its transition, and the pruning is
   itself an error finding. *)
let unsat_guard_fixture () =
  let spec =
    {
      M.spec_name = "FIX_UNSAT";
      initial = "S0";
      finals = [ "S1" ];
      attack_states = [];
      transitions =
        [
          M.ir_transition ~label:"go" ~from_state:"S0" (M.On_event "e") ~to_state:"S1" ();
          M.ir_transition ~label:"never" ~from_state:"S0" (M.On_event "e") ~to_state:"S1"
            ~guard:
              (I.And
                 [
                   I.Cmp (I.Le, field_n, I.Int_const 3); I.Cmp (I.Ge, field_n, I.Int_const 7);
                 ])
            ();
        ];
    }
  in
  let r = Verifier.verify_spec spec in
  check_bool "unsatisfiable guard found" true
    (has_error_in ~pass:"reachability" ~grep:"unsatisfiable" r.Verifier.findings);
  check_bool "transition pruned" true (List.mem "never" r.Verifier.pruned_transitions);
  (* The contradictory pair is vacuously disjoint once pruned. *)
  check_bool "determinism still discharged" true r.Verifier.determinism_discharged

(* ------------------------------------------------------------------ *)
(* validate_spec structural gaps                                        *)
(* ------------------------------------------------------------------ *)

let base_struct =
  {
    M.spec_name = "FIX_STRUCT";
    initial = "S0";
    finals = [ "S1" ];
    attack_states = [];
    transitions =
      [ M.ir_transition ~label:"go" ~from_state:"S0" (M.On_event "e") ~to_state:"S1" () ];
  }

let expect_invalid name spec =
  match M.validate_spec spec with
  | Ok () -> Alcotest.failf "%s: expected validate_spec to reject" name
  | Error _ -> ()

let validate_gaps () =
  (match M.validate_spec base_struct with
  | Ok () -> ()
  | Error e -> Alcotest.failf "base fixture should be valid: %s" e);
  expect_invalid "final attack state"
    { base_struct with M.attack_states = [ ("S1", "also final") ] };
  expect_invalid "empty alert description"
    {
      base_struct with
      M.attack_states = [ ("ATK", "  ") ];
      transitions =
        base_struct.M.transitions
        @ [ M.ir_transition ~label:"atk" ~from_state:"S0" (M.On_event "x") ~to_state:"ATK" () ];
    };
  expect_invalid "orphan from_state"
    {
      base_struct with
      M.transitions =
        base_struct.M.transitions
        @ [ M.ir_transition ~label:"typo" ~from_state:"NOWHERE" (M.On_event "x") ~to_state:"S1" () ];
    };
  expect_invalid "orphan to_state"
    {
      base_struct with
      M.transitions =
        base_struct.M.transitions
        @ [ M.ir_transition ~label:"typo" ~from_state:"S0" (M.On_event "x") ~to_state:"NOWHERE" () ];
    }

(* ------------------------------------------------------------------ *)
(* The shipped specifications verify clean                              *)
(* ------------------------------------------------------------------ *)

let shipped_systems () =
  let cfg = Vids.Config.default in
  [
    ( "call",
      [
        (Vids.Sip_call_machine.spec cfg, Vids.Sip_call_machine.vars);
        (Vids.Rtp_call_machine.spec cfg, Vids.Rtp_call_machine.vars);
      ] );
    ("invite-flood", [ (Vids.Invite_flood_machine.spec cfg, Vids.Invite_flood_machine.vars) ]);
    ("media-spam", [ (Vids.Media_spam_machine.spec cfg, Vids.Media_spam_machine.vars) ]);
    ("drdos", [ (Vids.Drdos_machine.spec cfg, Vids.Drdos_machine.vars) ]);
  ]

let shipped_specs_clean () =
  List.iter
    (fun (name, sys) ->
      let report = Verifier.verify_system sys in
      List.iter
        (fun (m : Verifier.machine_report) ->
          check_bool
            (Printf.sprintf "%s/%s: zero error findings" name m.Verifier.spec_name)
            true
            (Verifier.machine_errors m = []);
          check_bool
            (Printf.sprintf "%s/%s: determinism statically discharged" name m.Verifier.spec_name)
            true m.Verifier.determinism_discharged)
        report.Verifier.machines;
      check_bool
        (Printf.sprintf "%s: no system-level errors" name)
        true
        (not (Verifier.has_errors report)))
    (shipped_systems ())

let shipped_report_renders () =
  let report = Verifier.verify_system (List.assoc "call" (shipped_systems ())) in
  let text = Analyze.Report.render_text report in
  check_bool "text mentions discharge" true (contains text "statically discharged");
  let json = Analyze.Report.render_json report in
  check_bool "json has machines" true (contains json "\"machines\"");
  check_bool "json error count is zero" true (contains json "\"errors\": 0");
  let sip = Vids.Sip_call_machine.spec Vids.Config.default in
  let dot = Analyze.Report.render_dot report sip in
  check_bool "dot is a digraph" true (contains dot "digraph")

(* ------------------------------------------------------------------ *)
(* Compiled IR ≡ reference interpreter (qcheck)                         *)
(* ------------------------------------------------------------------ *)

let q ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)

let vars_pool = [ (Env.Local, "va"); (Env.Local, "vb"); (Env.Global, "vg") ]
let fields_pool = [ "fa"; "fb"; "fc" ]

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> V.Int n) (int_range (-3) 6);
        map (fun s -> V.Str s) (oneofl [ "x"; "y"; "h1" ]);
        map (fun b -> V.Bool b) bool;
        map2 (fun h p -> V.Addr (h, p)) (oneofl [ "h1"; "h2" ]) (int_range 1 3);
        return V.Unset;
      ])

let rec expr_gen n =
  let open QCheck.Gen in
  let base =
    [
      map (fun v -> I.Const v) value_gen;
      map (fun v -> I.Var v) (oneofl vars_pool);
      map (fun f -> I.Field f) (oneofl fields_pool);
    ]
  in
  if n = 0 then oneof base
  else
    oneof
      (base
      @ [
          map2 (fun a b -> I.Mk_addr (a, b)) (expr_gen (n - 1)) (expr_gen (n - 1));
          map (fun a -> I.Addr_host a) (expr_gen (n - 1));
          map (fun a -> I.Of_int a) (iexpr_gen (n - 1));
          map (fun p -> I.Of_pred p) (pred_gen (n - 1));
        ])

and iexpr_gen n =
  let open QCheck.Gen in
  let base = [ map (fun c -> I.Int_const c) (int_range (-4) 8) ] in
  if n = 0 then oneof base
  else
    oneof
      (base
      @ [
          map (fun e -> I.Int_of e) (expr_gen (n - 1));
          map (fun e -> I.Int_or0 e) (expr_gen (n - 1));
          map2 (fun a b -> I.Add (a, b)) (iexpr_gen (n - 1)) (iexpr_gen (n - 1));
          map2 (fun a b -> I.Sub (a, b)) (iexpr_gen (n - 1)) (iexpr_gen (n - 1));
        ])

and pred_gen n =
  let open QCheck.Gen in
  let cmp_gen = oneofl [ I.Lt; I.Le; I.Gt; I.Ge; I.Ieq; I.Ine ] in
  let base =
    [
      return I.True;
      return I.False;
      map2 (fun a b -> I.Eq (a, b)) (expr_gen 0) (expr_gen 0);
      map2 (fun e vs -> I.Member (e, vs)) (expr_gen 0) (list_size (int_range 0 3) value_gen);
      map (fun f -> I.Has_field f) (oneofl fields_pool);
    ]
  in
  if n = 0 then oneof base
  else
    oneof
      (base
      @ [
          map (fun p -> I.Not p) (pred_gen (n - 1));
          map (fun ps -> I.And ps) (list_size (int_range 0 3) (pred_gen (n - 1)));
          map (fun ps -> I.Or ps) (list_size (int_range 0 3) (pred_gen (n - 1)));
          map2 (fun a b -> I.Eq (a, b)) (expr_gen (n - 1)) (expr_gen (n - 1));
          map3 (fun c a b -> I.Cmp (c, a, b)) cmp_gen (iexpr_gen (n - 1)) (iexpr_gen (n - 1));
        ])

let rec act_gen n =
  let open QCheck.Gen in
  let base =
    [
      map2 (fun v e -> I.Assign (v, e)) (oneofl vars_pool) (expr_gen 1);
      map
        (fun e -> I.Send_sync { target = "PEER"; event_name = "ev"; args = [ ("k", e) ] })
        (expr_gen 1);
      return (I.Set_timer { id = "T"; delay = sec 1.0 });
      return (I.Cancel_timer "T");
    ]
  in
  if n = 0 then oneof base
  else
    oneof
      (base
      @ [
          map3
            (fun p t e -> I.If (p, t, e))
            (pred_gen 1)
            (list_size (int_range 0 2) (act_gen (n - 1)))
            (list_size (int_range 0 2) (act_gen (n - 1)));
        ])

let bindings_gen =
  QCheck.Gen.(list_size (int_range 0 4) (pair (oneofl vars_pool) value_gen))

let args_gen = QCheck.Gen.(list_size (int_range 0 4) (pair (oneofl fields_pool) value_gen))

let mk_env bindings =
  let env = Env.create (Env.globals ()) in
  List.iter (fun ((scope, name), v) -> Env.set env scope name v) bindings;
  env

let mk_event args = Efsm.Event.make ~args (Efsm.Event.Data "SIP") ~at:(sec 0.0) "e"

let pred_equiv =
  q "ir: compiled guard = interpreted guard"
    (QCheck.make
       ~print:(fun (p, _, _) -> I.pred_to_string p)
       QCheck.Gen.(triple (pred_gen 4) bindings_gen args_gen))
    (fun (p, bindings, args) ->
      let env = mk_env bindings and event = mk_event args in
      let compiled = I.compile_pred p in
      Bool.equal (compiled env event) (I.eval_pred env event p))

let acts_equiv =
  q "ir: compiled actions = interpreted actions (effects and env)"
    (QCheck.make QCheck.Gen.(triple (list_size (int_range 0 4) (act_gen 2)) bindings_gen args_gen))
    (fun (acts, bindings, args) ->
      let env_i = mk_env bindings and env_c = mk_env bindings in
      let event = mk_event args in
      let effs_i = I.run_acts M.builders acts env_i event in
      let effs_c = (I.compile_acts M.builders acts) env_c event in
      effs_i = effs_c
      && Env.local_bindings env_i = Env.local_bindings env_c
      && Env.global_bindings env_i = Env.global_bindings env_c)

(* ------------------------------------------------------------------ *)
(* Digest transparency of the IR migration                              *)
(* ------------------------------------------------------------------ *)

(* Golden digests captured on the closure-built specs immediately before
   the IR migration (same scenario, seed and horizon).  The migrated
   machines must reproduce the engine's observable behaviour bit for
   bit.  The alert digest is the behavioural pin; the engine digest is
   over the snapshot serialization and is re-pinned when the snapshot
   format itself gains fields (last: detector last-touched times and the
   detectors-swept counter). *)
let golden_alert_digest = "5042aef8b47acb330344d71f93363369"
let golden_engine_digest = "2c0697a823b6fd8e149cdfd513a0242a"

let digest_transparency () =
  let module T = Voip.Testbed in
  let all_attacks =
    [
      "bye-dos"; "cancel-dos"; "hijack"; "media-spam"; "billing-fraud"; "invite-flood";
      "rtp-flood"; "drdos";
    ]
  in
  let tb = T.make ~seed:42 ~vids:T.Monitor () in
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  let ua_a n = List.nth tb.T.uas_a n and ua_b n = List.nth tb.T.uas_b n in
  List.iteri
    (fun i name ->
      let at = sec (5.0 +. (25.0 *. float_of_int i)) in
      let pair = i mod 8 in
      match name with
      | "bye-dos" -> Attack.Scenarios.spoofed_bye_call atk ~caller:(ua_a pair) ~callee:(ua_b pair) ~at
      | "cancel-dos" ->
          Attack.Scenarios.cancel_dos_call atk ~caller:(ua_a pair) ~callee:(ua_b pair) ~at
      | "hijack" -> Attack.Scenarios.hijack_call atk ~caller:(ua_a pair) ~callee:(ua_b pair) ~at
      | "media-spam" ->
          Attack.Scenarios.media_spam_call atk ~caller:(ua_a pair) ~callee:(ua_b pair) ~at
      | "billing-fraud" ->
          Attack.Scenarios.billing_fraud_call atk ~caller:(ua_a pair) ~callee:(ua_b pair) ~at
      | "invite-flood" ->
          Attack.Scenarios.invite_flood atk ~target:(Voip.Ua.aor (ua_b pair)) ~via_proxy:true
            ~count:25 ~interval:(Dsim.Time.of_ms 40.0) ~at
      | "rtp-flood" ->
          Attack.Scenarios.rtp_flood atk
            ~target:(Dsim.Addr.v (T.ua_b_host tb pair) 16500)
            ~rate_pps:400 ~duration:(sec 2.0) ~at
      | "drdos" ->
          Attack.Scenarios.drdos atk ~victim_host:(T.ua_b_host tb pair) ~reflectors:20
            ~responses:60 ~at
      | _ -> assert false)
    all_attacks;
  let horizon = sec (40.0 +. (25.0 *. float_of_int (List.length all_attacks))) in
  T.run_until tb horizon;
  let engine = T.engine_exn tb in
  let lines =
    List.map
      (fun (a : Vids.Alert.t) ->
        Printf.sprintf "%s|%s|%d|%s|%s"
          (Vids.Alert.kind_to_string a.Vids.Alert.kind)
          (Vids.Alert.severity_to_string a.Vids.Alert.severity)
          (Dsim.Time.to_us a.Vids.Alert.at) a.Vids.Alert.subject a.Vids.Alert.detail)
      (Vids.Engine.alerts engine)
  in
  check_int "all eight attacks alerted" 8 (List.length lines);
  check_string "alert digest unchanged by IR migration" golden_alert_digest
    (Digest.to_hex (Digest.string (String.concat "\n" lines)));
  check_string "engine digest unchanged by IR migration" golden_engine_digest
    (Digest.to_hex (Digest.string (Vids.Snapshot.digest ~at:horizon engine)))

let suite =
  [
    ( "analyze.fixtures",
      [
        Alcotest.test_case "nondeterministic pair flagged" `Quick nondeterministic_fixture;
        Alcotest.test_case "orphan Send_sync flagged" `Quick orphan_sync_fixture;
        Alcotest.test_case "uninitialized read flagged" `Quick uninitialized_read_fixture;
        Alcotest.test_case "dangling timer flagged" `Quick dangling_timer_fixture;
        Alcotest.test_case "unreachable attack state flagged" `Quick unreachable_attack_fixture;
        Alcotest.test_case "unsatisfiable guard pruned" `Quick unsat_guard_fixture;
        Alcotest.test_case "validate_spec structural gaps" `Quick validate_gaps;
      ] );
    ( "analyze.shipped",
      [
        Alcotest.test_case "all five specs verify clean" `Quick shipped_specs_clean;
        Alcotest.test_case "report renders (text/json/dot)" `Quick shipped_report_renders;
      ] );
    ("analyze.ir", [ pred_equiv; acts_equiv ]);
    ( "analyze.digest",
      [ Alcotest.test_case "IR migration is digest-transparent" `Slow digest_transparency ] );
  ]
