(* SIP/SDP/RTP torture battery, in the spirit of RFC 4475: wellformed but
   unusual messages must parse; malformed ones must be rejected, never
   crash.  The vIDS classifier treats a rejected message as a reportable
   protocol deviation, so the split matters for the false-positive rate. *)

let check = Alcotest.(check bool)
let tc name f = Alcotest.test_case name `Quick f

let crlf lines = String.concat "\r\n" lines ^ "\r\n\r\n"

let parses text = Result.is_ok (Sip.Msg.parse text)
let rejects text = Result.is_error (Sip.Msg.parse text)

let base_headers =
  [
    "Via: SIP/2.0/UDP h.example;branch=z9hG4bKt";
    "From: <sip:a@x.example>;tag=1";
    "To: <sip:b@y.example>";
    "Call-ID: torture@h.example";
    "CSeq: 1 OPTIONS";
  ]

let msg ?(start = "OPTIONS sip:b@y.example SIP/2.0") ?(headers = base_headers) () =
  crlf (start :: headers)

(* --- wellformed but unusual ------------------------------------------ *)

let t_unusual_spacing () =
  check "extra spaces after colon" true
    (parses (msg ~headers:("Subject:            lots of space" :: base_headers) ()));
  check "tab folding" true
    (parses (msg ~headers:(("Subject: line1" ^ "\r\n\tline2") :: base_headers) ()))

let t_compact_and_long_mixed () =
  check "mixed compact/long" true
    (parses
       (crlf
          [
            "OPTIONS sip:b@y SIP/2.0";
            "v: SIP/2.0/UDP h;branch=z9hG4bKt";
            "From: <sip:a@x>;tag=1";
            "t: <sip:b@y>";
            "i: mixed";
            "CSeq: 1 OPTIONS";
          ]))

let t_header_case_insensitive () =
  check "screaming case" true
    (parses
       (crlf
          [
            "OPTIONS sip:b@y SIP/2.0";
            "VIA: SIP/2.0/UDP h;branch=z9hG4bKt";
            "FROM: <sip:a@x>;tag=1";
            "TO: <sip:b@y>";
            "CALL-ID: caps";
            "CSEQ: 1 OPTIONS";
          ]));
  let m = Result.get_ok (Sip.Msg.parse (crlf [ "OPTIONS sip:b@y SIP/2.0"; "cAlL-Id: weird" ])) in
  check "canonicalized access" true (Sip.Msg.call_id m = Ok "weird")

let t_long_values () =
  let long = String.make 4000 'x' in
  check "4k header value" true
    (parses (msg ~headers:(("X-Long: " ^ long) :: base_headers) ()));
  check "long request user" true
    (parses (msg ~start:("INVITE sip:" ^ String.make 500 'u' ^ "@h SIP/2.0") ()))

let t_unknown_method_and_headers () =
  check "unknown method" true (parses (msg ~start:"NEWFANGLED sip:b@y SIP/2.0" ()));
  check "unknown headers kept" true
    (parses (msg ~headers:("X-Wild-Thing: 42" :: base_headers) ()))

let t_multi_via_forms () =
  (* Two Via headers, and one comma-separated Via header, both give a
     two-deep stack. *)
  let two_lines =
    crlf
      ([ "OPTIONS sip:b@y SIP/2.0"; "Via: SIP/2.0/UDP p1;branch=z9hG4bKa" ]
      @ [ "Via: SIP/2.0/UDP p2;branch=z9hG4bKb" ]
      @ List.tl base_headers)
  in
  let comma =
    crlf
      ([ "OPTIONS sip:b@y SIP/2.0";
         "Via: SIP/2.0/UDP p1;branch=z9hG4bKa, SIP/2.0/UDP p2;branch=z9hG4bKb" ]
      @ List.tl base_headers)
  in
  let vias text = List.length (Result.get_ok (Sip.Msg.vias (Result.get_ok (Sip.Msg.parse text)))) in
  Alcotest.(check int) "two lines" 2 (vias two_lines);
  Alcotest.(check int) "comma form" 2 (vias comma)

let t_display_name_quirks () =
  check "quoted display with comma" true
    (parses (msg ~headers:("Contact: \"Smith, J.\" <sip:j@h>" :: base_headers) ()));
  let m =
    Result.get_ok
      (Sip.Msg.parse (msg ~headers:("Contact: \"Smith, J.\" <sip:j@h>" :: base_headers) ()))
  in
  match Sip.Msg.contact m with
  | Ok na -> check "display preserved" true (na.Sip.Name_addr.display = Some "Smith, J.")
  | Error _ -> Alcotest.fail "contact should parse"

let t_empty_body_with_length_zero () =
  check "explicit zero length" true
    (parses (String.concat "\r\n" (("OPTIONS sip:b@y SIP/2.0" :: base_headers) @ [ "Content-Length: 0"; ""; "" ])))

let t_body_with_crlf_content () =
  let body = "line1\r\nline2\r\n\r\ntrailing" in
  let text =
    String.concat "\r\n"
      (("OPTIONS sip:b@y SIP/2.0" :: base_headers)
      @ [ Printf.sprintf "Content-Length: %d" (String.length body); ""; body ])
  in
  let m = Result.get_ok (Sip.Msg.parse text) in
  check "body with embedded blank line intact" true (m.Sip.Msg.body = body)

let t_status_edge_codes () =
  check "100" true (parses (crlf ("SIP/2.0 100 Trying" :: base_headers)));
  check "699" true (parses (crlf ("SIP/2.0 699 Weird" :: base_headers)));
  check "reason with spaces" true
    (parses (crlf ("SIP/2.0 480 Temporarily not available right now" :: base_headers)));
  check "empty reason" true (parses (crlf ("SIP/2.0 200" :: base_headers)))

(* --- malformed -------------------------------------------------------- *)

let t_malformed_start_lines () =
  check "no version" true (rejects (crlf [ "OPTIONS sip:b@y" ]));
  check "wrong version" true (rejects (crlf [ "OPTIONS sip:b@y SIP/3.0" ]));
  check "code too small" true (rejects (crlf ("SIP/2.0 42 Answer" :: base_headers)));
  check "code too large" true (rejects (crlf ("SIP/2.0 700 Nope" :: base_headers)));
  check "spaces in uri" true (rejects (crlf [ "OPTIONS sip:b @y SIP/2.0" ]));
  check "empty message" true (rejects "");
  check "only crlf" true (rejects "\r\n\r\n")

let t_malformed_headers () =
  check "colonless header" true
    (rejects (crlf [ "OPTIONS sip:b@y SIP/2.0"; "NoColonHere" ]));
  check "empty name" true (rejects (crlf [ "OPTIONS sip:b@y SIP/2.0"; ": value" ]))

let t_content_length_lies () =
  check "length beyond body" true
    (rejects
       (String.concat "\r\n"
          (("OPTIONS sip:b@y SIP/2.0" :: base_headers) @ [ "Content-Length: 999"; ""; "short" ])));
  check "negative rejected" true
    (rejects
       (String.concat "\r\n"
          (("OPTIONS sip:b@y SIP/2.0" :: base_headers) @ [ "Content-Length: -5"; ""; "body" ])))

let t_binary_garbage () =
  (* Arbitrary binary on the SIP port must be rejected, not crash. *)
  let garbage = String.init 64 (fun i -> Char.chr (255 - i)) in
  check "binary rejected" true (rejects garbage)

let t_uri_torture () =
  let good =
    [ "sip:j%40son@h"; "sip:host"; "sips:a@b:1"; "sip:a@b;p1;p2;p3=x"; "tel:+1-212-555-0101" ]
  in
  List.iter (fun u -> check u true (Result.is_ok (Sip.Uri.parse u))) good;
  let bad = [ ""; ":"; "sip:"; "mailto:x@y"; "sip:a@b:port" ] in
  List.iter (fun u -> check u true (Result.is_error (Sip.Uri.parse u))) bad

(* --- SDP torture ------------------------------------------------------ *)

let t_sdp_torture () =
  let ok_cases =
    [
      (* minimal *)
      "v=0\r\no=x 1 1 IN IP4 h\r\ns= \r\nt=0 0\r\n";
      (* media before attributes, several formats *)
      "v=0\r\no=x 1 1 IN IP4 h\r\ns=-\r\nc=IN IP4 1.2.3.4\r\nt=0 0\r\nm=audio 9 RTP/AVP 0 8 18 101\r\na=sendrecv\r\n";
      (* LF-only line endings *)
      "v=0\no=x 1 1 IN IP4 h\ns=-\nt=0 0\n";
    ]
  in
  List.iter (fun s -> check "sdp ok" true (Result.is_ok (Sdp.parse s))) ok_cases;
  let bad_cases = [ "vv=0\r\n"; "v=0\r\nm=audio RTP/AVP\r\n"; "x" ] in
  List.iter (fun s -> check "sdp bad" true (Result.is_error (Sdp.parse s))) bad_cases

(* --- RTP torture ------------------------------------------------------ *)

let t_rtp_torture () =
  (* Header exactly 12 bytes parses with empty payload. *)
  let minimal =
    Rtp.Rtp_packet.encode
      (Rtp.Rtp_packet.make ~payload_type:0 ~sequence:0 ~timestamp:0l ~ssrc:0l "")
  in
  check "minimal" true (Result.is_ok (Rtp.Rtp_packet.decode minimal));
  (* All CSRC counts decode when the bytes are present. *)
  for cc = 0 to 15 do
    let b = Bytes.make (12 + (4 * cc)) '\x00' in
    Bytes.set b 0 (Char.chr (0x80 lor cc));
    check
      (Printf.sprintf "cc=%d" cc)
      true
      (Result.is_ok (Rtp.Rtp_packet.decode (Bytes.to_string b)))
  done;
  (* One byte short of the CSRC list fails cleanly. *)
  let b = Bytes.make 15 '\x00' in
  Bytes.set b 0 (Char.chr (0x80 lor 1));
  check "truncated csrc" true (Result.is_error (Rtp.Rtp_packet.decode (Bytes.to_string b)));
  (* Extension header: present and truncated. *)
  let ext_ok = Bytes.make 20 '\x00' in
  Bytes.set ext_ok 0 '\x90';
  (* 4-byte ext header with 1 word of body. *)
  Bytes.set ext_ok 15 '\x01';
  check "extension ok" true (Result.is_ok (Rtp.Rtp_packet.decode (Bytes.to_string ext_ok)));
  let ext_short = Bytes.make 14 '\x00' in
  Bytes.set ext_short 0 '\x90';
  check "extension truncated" true
    (Result.is_error (Rtp.Rtp_packet.decode (Bytes.to_string ext_short)))

(* --- engine fuzz ------------------------------------------------------ *)

(* Random, truncated and corrupted wire bytes straight into the analysis
   engine.  The contract under test is the containment boundary's: no input,
   however crafted, may escape as an exception, and every packet lands in
   exactly one classification counter. *)

let t_engine_fuzz () =
  let st = Random.State.make [| 0xf00d |] in
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create sched in
  let alloc = Dsim.Packet.allocator () in
  let invite i =
    Printf.sprintf
      "INVITE sip:bob@b.example SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bKf%d\r\nFrom: <sip:a@x>;tag=f%d\r\nTo: <sip:bob@b.example>\r\nCall-ID: fuzz-%d\r\nCSeq: 1 INVITE\r\n\r\n"
      i i i
  in
  let random_bytes n = String.init n (fun _ -> Char.chr (Random.State.int st 256)) in
  let corrupt s =
    let b = Bytes.of_string s in
    for _ = 0 to 3 do
      Bytes.set b (Random.State.int st (Bytes.length b)) (Char.chr (Random.State.int st 256))
    done;
    Bytes.to_string b
  in
  let n = 2000 in
  for i = 0 to n - 1 do
    let payload =
      match i mod 4 with
      | 0 -> random_bytes (Random.State.int st 512)
      | 1 ->
          let v = invite i in
          String.sub v 0 (Random.State.int st (String.length v))
      | 2 -> corrupt (invite i)
      | _ -> invite i
    in
    let port = if i mod 3 = 0 then 20000 + (i mod 100) else 5060 in
    let p =
      Dsim.Packet.make alloc
        ~src:(Dsim.Addr.v "203.0.113.66" 5060)
        ~dst:(Dsim.Addr.v "10.2.0.2" port)
        ~sent_at:Dsim.Time.zero payload
    in
    (* Any escaping exception fails the test here. *)
    Vids.Engine.process_packet engine p
  done;
  let c = Vids.Engine.counters engine in
  check "rejections recorded" true (c.Vids.Engine.malformed_packets > 0);
  check "valid invites survived" true (c.Vids.Engine.sip_packets > 0);
  (* Accounting: each packet hits at least one counter unless a contained
     fault cut the pipeline short (a parsable SIP message without a
     Call-ID counts as both sip and malformed). *)
  let classified =
    c.Vids.Engine.sip_packets + c.Vids.Engine.rtp_packets + c.Vids.Engine.rtcp_packets
    + c.Vids.Engine.other_packets + c.Vids.Engine.malformed_packets
  in
  check "no packet lost to the accounting" true
    (classified + c.Vids.Engine.faults >= n
    && classified <= n + c.Vids.Engine.malformed_packets);
  Alcotest.(check int) "no faults needed containing" 0 c.Vids.Engine.faults

let suite =
  [
    ( "torture.sip",
      [
        tc "unusual spacing" t_unusual_spacing;
        tc "compact/long mixed" t_compact_and_long_mixed;
        tc "case-insensitive names" t_header_case_insensitive;
        tc "long values" t_long_values;
        tc "unknown method/headers" t_unknown_method_and_headers;
        tc "multi-via forms" t_multi_via_forms;
        tc "display name quirks" t_display_name_quirks;
        tc "zero-length body" t_empty_body_with_length_zero;
        tc "body with crlf" t_body_with_crlf_content;
        tc "status code edges" t_status_edge_codes;
        tc "malformed start lines" t_malformed_start_lines;
        tc "malformed headers" t_malformed_headers;
        tc "content-length lies" t_content_length_lies;
        tc "binary garbage" t_binary_garbage;
        tc "uri torture" t_uri_torture;
      ] );
    ("torture.sdp", [ tc "sdp cases" t_sdp_torture ]);
    ("torture.rtp", [ tc "rtp cases" t_rtp_torture ]);
    ("torture.engine", [ tc "wire-byte fuzz" t_engine_fuzz ]);
  ]
