(* The dialog-rich synthetic trace shared by the observability and
   profiling benches: every 50 ms a new call starts; two in three run a
   full dialog with a media burst, one in three is abandoned after the
   INVITE.  Three rogue RTP floods ride on top so the media-spam
   detector (and its alerts) exercise the instrumented paths too.

   Benches that need a *different* traffic shape (the shard bench's
   collision-free media hosts, the soak bench's pcap fixtures) keep their
   own builders; this is the common "telemetry cost" workload. *)

let ms = Dsim.Time.of_ms
let sip_addr host = Dsim.Addr.v host 5060

let invite ~call_id ~port =
  let body =
    Printf.sprintf
      "v=0\r\no=alice 0 0 IN IP4 10.1.0.10\r\ns=-\r\nc=IN IP4 10.1.0.10\r\nt=0 0\r\nm=audio %d RTP/AVP 18\r\n"
      port
  in
  Printf.sprintf
    "INVITE sip:bob@b.example SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>\r\n\
     Call-ID: %s\r\n\
     CSeq: 1 INVITE\r\n\
     Contact: <sip:alice@10.1.0.10:5060>\r\n\
     Content-Type: application/sdp\r\n\
     Content-Length: %d\r\n\r\n%s"
    call_id call_id call_id (String.length body) body

let response ~call_id ~code ~cseq ~sdp ~port =
  let body =
    if sdp then
      Printf.sprintf
        "v=0\r\no=bob 0 0 IN IP4 10.2.0.10\r\ns=-\r\nc=IN IP4 10.2.0.10\r\nt=0 0\r\nm=audio %d RTP/AVP 18\r\n"
        port
    else ""
  in
  Printf.sprintf
    "SIP/2.0 %d X\r\n\
     Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: %s\r\n%sContent-Length: %d\r\n\r\n%s"
    code call_id call_id call_id call_id cseq
    (if sdp then "Content-Type: application/sdp\r\n" else "")
    (String.length body) body

let ack ~call_id =
  Printf.sprintf
    "ACK sip:bob@10.2.0.10 SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKa-%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: 1 ACK\r\n\r\n"
    call_id call_id call_id call_id

let bye ~call_id =
  Printf.sprintf
    "BYE sip:bob@10.2.0.10 SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKb-%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: 2 BYE\r\n\r\n"
    call_id call_id call_id call_id

let rtp_bytes ~seq =
  Rtp.Rtp_packet.encode
    (Rtp.Rtp_packet.make ~payload_type:18 ~sequence:seq
       ~timestamp:(Int32.of_int (160 * seq)) ~ssrc:77l (String.make 20 'v'))

let make_trace ~calls =
  let records = ref [] in
  let add at src dst payload = records := { Vids.Trace.at; src; dst; payload } :: !records in
  let a_sig = sip_addr "10.1.0.2" and b_sig = sip_addr "10.2.0.2" in
  for i = 0 to calls - 1 do
    let call_id = Printf.sprintf "obs-%d" i in
    let t0 = ms (float_of_int (50 * i)) in
    let port = 16384 + (2 * (i mod 2048)) in
    let ( +& ) a b = Dsim.Time.add a b in
    add t0 a_sig b_sig (invite ~call_id ~port);
    if i mod 3 <> 2 then begin
      add (t0 +& ms 20.) b_sig a_sig (response ~call_id ~code:180 ~cseq:"1 INVITE" ~sdp:false ~port);
      add (t0 +& ms 40.) b_sig a_sig (response ~call_id ~code:200 ~cseq:"1 INVITE" ~sdp:true ~port);
      add (t0 +& ms 60.) a_sig b_sig (ack ~call_id);
      let media_src = Dsim.Addr.v "10.1.0.10" port in
      let media_dst = Dsim.Addr.v "10.2.0.10" port in
      for s = 0 to 4 do
        add (t0 +& ms (80. +. (20. *. float_of_int s))) media_src media_dst (rtp_bytes ~seq:s)
      done;
      add (t0 +& ms 600.) a_sig b_sig (bye ~call_id);
      add (t0 +& ms 620.) b_sig a_sig (response ~call_id ~code:200 ~cseq:"2 BYE" ~sdp:false ~port)
    end
  done;
  for stream = 0 to 2 do
    let rogue_src = Dsim.Addr.v (Printf.sprintf "10.5.0.%d" stream) 22000 in
    let rogue_dst = Dsim.Addr.v (Printf.sprintf "10.6.0.%d" stream) 22000 in
    for s = 0 to 199 do
      add
        (Dsim.Time.add (ms (float_of_int (100 * stream))) (ms (float_of_int (4 * s))))
        rogue_src rogue_dst (rtp_bytes ~seq:s)
    done
  done;
  List.rev !records

(* Past the last call's BYE (t0 + 620 ms) with margin for the grace
   timers the replays rely on. *)
let horizon ~calls = ms (float_of_int ((50 * calls) + 700))
