(* Shard bench: throughput scaling and cross-shard determinism.

   Two questions, answered in BENCH_shard.json:

   1. How does throughput scale with the shard count?  The same call-heavy
      trace (full dialogs with media, abandoned calls, an INVITE flood and
      a DRDoS burst) is replayed through [Shard_engine.run_trace] at 1, 2,
      4 and 8 shards, and through the sequential [Vids.Trace.replay] as
      the baseline.
   2. Is the sharded engine deterministic and faithful?  The merged
      partition-local alert multiset (everything except the two
      cross-shard detectors) must be digest-identical to the sequential
      engine's at every shard count, and every sequential INVITE-flood /
      DRDoS alert must have an aggregated counterpart on the same subject
      within one detector window.  Violations fail the run, and so CI.

   Scale comes from argv: [shard.exe 5000 2] runs 5000 calls up to 2
   shards (the CI smoke preset); the default is 100000 calls up to 8
   shards.  The >= 2x speedup gate at 4 shards is enforced only when the
   machine has at least 4 cores and 4 shards were run. *)

let ms = Dsim.Time.of_ms
let sip_addr host = Dsim.Addr.v host 5060

let invite ~call_id ~media_host ~port =
  let body =
    Printf.sprintf
      "v=0\r\no=alice 0 0 IN IP4 %s\r\ns=-\r\nc=IN IP4 %s\r\nt=0 0\r\nm=audio %d RTP/AVP 18\r\n"
      media_host media_host port
  in
  Printf.sprintf
    "INVITE sip:bob@b.example SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>\r\n\
     Call-ID: %s\r\n\
     CSeq: 1 INVITE\r\n\
     Contact: <sip:alice@10.1.0.10:5060>\r\n\
     Content-Type: application/sdp\r\n\
     Content-Length: %d\r\n\r\n%s"
    call_id call_id call_id (String.length body) body

let response ~call_id ~code ~cseq ~media_host ~port =
  let body =
    match media_host with
    | None -> ""
    | Some host ->
        Printf.sprintf
          "v=0\r\no=bob 0 0 IN IP4 %s\r\ns=-\r\nc=IN IP4 %s\r\nt=0 0\r\nm=audio %d RTP/AVP 18\r\n"
          host host port
  in
  Printf.sprintf
    "SIP/2.0 %d X\r\n\
     Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: %s\r\n%sContent-Length: %d\r\n\r\n%s"
    code call_id call_id call_id call_id cseq
    (if media_host <> None then "Content-Type: application/sdp\r\n" else "")
    (String.length body) body

let ack ~call_id =
  Printf.sprintf
    "ACK sip:bob@10.2.0.10 SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKa-%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: 1 ACK\r\n\r\n"
    call_id call_id call_id call_id

let bye ~call_id =
  Printf.sprintf
    "BYE sip:bob@10.2.0.10 SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKb-%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: 2 BYE\r\n\r\n"
    call_id call_id call_id call_id

let rtp_bytes ~seq =
  Rtp.Rtp_packet.encode
    (Rtp.Rtp_packet.make ~payload_type:18 ~sequence:seq
       ~timestamp:(Int32.of_int (160 * seq)) ~ssrc:77l (String.make 20 'v'))

(* Every 10 ms a new call starts; two in three run a full dialog with a
   media burst, one in three is abandoned after the INVITE.  Each call gets
   its own media hosts so the dispatcher's address bindings never collide
   across calls (address reuse is the one documented partition epsilon and
   not what this bench measures).  An INVITE flood and a DRDoS burst ride
   on top so the cross-shard aggregation path is exercised too. *)
let make_trace ~calls =
  let records = ref [] in
  let add at src dst payload = records := { Vids.Trace.at; src; dst; payload } :: !records in
  let a_sig = sip_addr "10.1.0.2" and b_sig = sip_addr "10.2.0.2" in
  for i = 0 to calls - 1 do
    let call_id = Printf.sprintf "bench-%d" i in
    let t0 = ms (float_of_int (10 * i)) in
    let a_media = Printf.sprintf "10.1.%d.%d" (1 + (i / 250)) (i mod 250) in
    let b_media = Printf.sprintf "10.2.%d.%d" (1 + (i / 250)) (i mod 250) in
    let port = 20000 in
    let ( +& ) a b = Dsim.Time.add a b in
    add t0 a_sig b_sig (invite ~call_id ~media_host:a_media ~port);
    if i mod 3 <> 2 then begin
      add (t0 +& ms 20.)
        b_sig a_sig (response ~call_id ~code:180 ~cseq:"1 INVITE" ~media_host:None ~port);
      add (t0 +& ms 40.)
        b_sig a_sig (response ~call_id ~code:200 ~cseq:"1 INVITE" ~media_host:(Some b_media) ~port);
      add (t0 +& ms 60.) a_sig b_sig (ack ~call_id);
      let media_src = Dsim.Addr.v a_media port in
      let media_dst = Dsim.Addr.v b_media port in
      for s = 0 to 4 do
        add (t0 +& ms (80. +. (20. *. float_of_int s))) media_src media_dst (rtp_bytes ~seq:s)
      done;
      add (t0 +& ms 600.) a_sig b_sig (bye ~call_id);
      add (t0 +& ms 620.)
        b_sig a_sig (response ~call_id ~code:200 ~cseq:"2 BYE" ~media_host:None ~port)
    end
  done;
  (* Partition-local alert fodder, so the determinism digest compares a
     non-empty multiset: a malformed SIP message from a distinct source
     every 40th call (Spec_deviation keyed by source), and three rogue RTP
     floods to addresses no SDP ever advertised (Rtp_flood keyed by
     destination). *)
  for i = 0 to (calls / 40) - 1 do
    add
      (ms (float_of_int ((10 * 40 * i) + 5)))
      (sip_addr (Printf.sprintf "10.7.%d.%d" (1 + (i / 250)) (i mod 250)))
      b_sig "NOT/A SIP MESSAGE\r\n\r\n"
  done;
  for stream = 0 to 2 do
    let rogue_src = Dsim.Addr.v (Printf.sprintf "10.5.0.%d" stream) 22000 in
    let rogue_dst = Dsim.Addr.v (Printf.sprintf "10.6.0.%d" stream) 22000 in
    for s = 0 to 199 do
      add
        (Dsim.Time.add (ms (float_of_int (100 * stream))) (ms (float_of_int (4 * s))))
        rogue_src rogue_dst (rtp_bytes ~seq:s)
    done
  done;
  (* INVITE flood: 12 INVITEs with distinct Call-IDs toward one callee in
     200 ms — the Call-IDs scatter across shards, so only aggregation can
     see the burst. *)
  let flood_t0 = ms (float_of_int (10 * calls)) in
  for k = 0 to 11 do
    let call_id = Printf.sprintf "flood-%d" k in
    add
      (Dsim.Time.add flood_t0 (ms (float_of_int (17 * k))))
      (sip_addr (Printf.sprintf "10.9.0.%d" k))
      b_sig
      (invite ~call_id ~media_host:"10.9.1.1" ~port:21000)
  done;
  (* DRDoS: 40 orphan responses from scattered reflectors toward one
     victim in 2 s. *)
  let drdos_t0 = Dsim.Time.add flood_t0 (ms 2000.) in
  let victim = sip_addr "10.66.0.1" in
  for k = 0 to 39 do
    let call_id = Printf.sprintf "reflect-%d" k in
    add
      (Dsim.Time.add drdos_t0 (ms (float_of_int (50 * k))))
      (sip_addr (Printf.sprintf "10.8.%d.%d" (k / 100) (k mod 100)))
      victim
      (response ~call_id ~code:200 ~cseq:"1 INVITE" ~media_host:None ~port:21000)
  done;
  List.rev !records

(* ------------------------------------------------------------------ *)

let is_global (a : Vids.Alert.t) =
  match a.Vids.Alert.kind with
  | Vids.Alert.Invite_flood | Vids.Alert.Drdos -> true
  | _ -> false

(* Canonical digest of the partition-local alert multiset. *)
let local_digest alerts =
  alerts
  |> List.filter (fun a -> not (is_global a))
  |> List.map (fun (a : Vids.Alert.t) ->
         Printf.sprintf "%s|%s|%d"
           (Vids.Alert.kind_to_string a.kind)
           a.subject
           (Dsim.Time.to_us a.at))
  |> List.sort String.compare
  |> String.concat "\n"
  |> fun s -> Digest.to_hex (Digest.string s)

(* Every sequential cross-shard alert must have an aggregated counterpart
   on the same (kind, subject) within one detector window. *)
let globals_covered ~config sequential sharded =
  let window (a : Vids.Alert.t) =
    match a.Vids.Alert.kind with
    | Vids.Alert.Invite_flood -> config.Vids.Config.invite_flood_window
    | _ -> config.Vids.Config.drdos_window
  in
  List.for_all
    (fun (s : Vids.Alert.t) ->
      List.exists
        (fun (a : Vids.Alert.t) ->
          a.kind = s.kind && String.equal a.subject s.subject
          && Dsim.Time.to_us (window s)
             >= abs (Dsim.Time.to_us a.at - Dsim.Time.to_us s.at))
        sharded)
    (List.filter is_global sequential)

type run = {
  shards : int;
  wall_s : float;
  records_per_s : float;
  speedup : float;
  stalls : int;
  alerts : int;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  deterministic : bool;
  globals_ok : bool;
}

let json_of_run r =
  Printf.sprintf
    "    {\"shards\": %d, \"wall_s\": %.4f, \"records_per_s\": %.0f, \"speedup\": %.2f, \
     \"stalls\": %d, \"alerts\": %d, \"p50_us\": %.2f, \"p95_us\": %.2f, \"p99_us\": %.2f, \
     \"deterministic\": %b, \"globals_covered\": %b}"
    r.shards r.wall_s r.records_per_s r.speedup r.stalls r.alerts r.p50_us r.p95_us r.p99_us
    r.deterministic r.globals_ok

let () =
  let calls = try int_of_string Sys.argv.(1) with _ -> 100_000 in
  let max_shards = try int_of_string Sys.argv.(2) with _ -> 8 in
  let config = Vids.Config.default in
  let trace = make_trace ~calls in
  let n_records = List.length trace in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "trace: %d calls, %d records; %d cores recommended\n%!" calls n_records cores;
  let sequential, seq_wall = Bench_common.timed (fun () -> Vids.Trace.replay ~config trace) in
  let seq_alerts = Vids.Engine.alerts sequential in
  let seq_digest = local_digest seq_alerts in
  Printf.printf "sequential: %.2f s, %.0f records/s, %d alerts\n%!" seq_wall
    (float_of_int n_records /. seq_wall)
    (List.length seq_alerts);
  let shard_counts = List.filter (fun n -> n <= max_shards) [ 1; 2; 4; 8 ] in
  let skipped_shard_counts = List.filter (fun n -> n > max_shards) [ 1; 2; 4; 8 ] in
  (match skipped_shard_counts with
  | [] -> ()
  | skipped ->
      Printf.printf "skipping shard counts beyond --max-shards %d: %s\n%!" max_shards
        (String.concat ", " (List.map string_of_int skipped)));
  let runs =
    List.map
      (fun shards ->
        let outcome, wall_s =
          Bench_common.timed (fun () ->
              Shard.Shard_engine.run_trace ~config ~measure_latency:true ~shards trace)
        in
        let stalls =
          Array.fold_left (fun acc s -> acc + s.Shard.Shard_engine.stalls) 0
            outcome.Shard.Shard_engine.per_shard
        in
        let q = Option.get outcome.Shard.Shard_engine.latency in
        let us f = 1e6 *. f in
        let run =
          {
            shards;
            wall_s;
            records_per_s = float_of_int n_records /. wall_s;
            speedup = seq_wall /. wall_s;
            stalls;
            alerts = List.length outcome.Shard.Shard_engine.alerts;
            p50_us = us (Dsim.Stat.Quantiles.p50 q);
            p95_us = us (Dsim.Stat.Quantiles.p95 q);
            p99_us = us (Dsim.Stat.Quantiles.p99 q);
            deterministic =
              String.equal seq_digest (local_digest outcome.Shard.Shard_engine.alerts);
            globals_ok =
              globals_covered ~config seq_alerts outcome.Shard.Shard_engine.alerts;
          }
        in
        Printf.printf
          "%d shards: %.2f s, %.0f records/s, speedup %.2fx, %d stalls, %d alerts, \
           deterministic=%b, globals=%b\n\
           %!"
          shards wall_s run.records_per_s run.speedup stalls run.alerts run.deterministic
          run.globals_ok;
        run)
      shard_counts
  in
  let deterministic = List.for_all (fun r -> r.deterministic && r.globals_ok) runs in
  (* [None] when the 4-shard configuration never ran (small box): the
     JSON then reports [null] rather than a misleading 0.00x. *)
  let speedup_at_4 =
    Option.map (fun r -> r.speedup) (List.find_opt (fun r -> r.shards = 4) runs)
  in
  (* The 2x gate is meaningful only with enough cores to actually run four
     workers in parallel. *)
  let gate_enforced = cores >= 4 && speedup_at_4 <> None in
  let gate_passed =
    (not gate_enforced) || match speedup_at_4 with Some s -> s >= 2.0 | None -> true
  in
  Bench_common.write_json ~path:"BENCH_shard.json"
    (Printf.sprintf
       "{\n\
       \  \"bench\": \"shard\",\n\
       \  \"calls\": %d,\n\
       \  \"records\": %d,\n\
       \  \"cores\": %d,\n\
       \  \"sequential_wall_s\": %.4f,\n\
       \  \"sequential_records_per_s\": %.0f,\n\
       \  \"deterministic\": %b,\n\
       \  \"speedup_at_4\": %s,\n\
       \  \"skipped_shard_counts\": [%s],\n\
       \  \"gate\": {\"required_speedup_at_4\": 2.0, \"enforced\": %b, \"passed\": %b},\n\
       \  \"scaling\": [\n%s\n  ]\n\
        }\n"
       calls n_records cores seq_wall
       (float_of_int n_records /. seq_wall)
       deterministic
       (match speedup_at_4 with Some s -> Printf.sprintf "%.2f" s | None -> "null")
       (String.concat ", " (List.map string_of_int skipped_shard_counts))
       gate_enforced gate_passed
       (String.concat ",\n" (List.map json_of_run runs)));
  if not deterministic then begin
    prerr_endline "FAIL: sharded alert multiset diverged from the sequential engine";
    exit 1
  end;
  if not gate_passed then begin
    Printf.eprintf "FAIL: speedup at 4 shards %.2fx < 2.0x\n"
      (Option.value ~default:0. speedup_at_4);
    exit 1
  end
