(* Observability bench: what does leaving telemetry on cost, and does it
   change detection?

   Two questions, answered in BENCH_obs.json:

   1. Overhead — the same dialog-rich trace (full dialogs with media,
      abandoned calls, a rogue RTP flood) is replayed through a bare
      engine and through one carrying a full metrics registry + flight
      recorder.  Best-of-N wall times; the gate requires the instrumented
      run within 5% of the baseline (plus a 10 ms epsilon so micro runs
      aren't judged on scheduler noise).
   2. Transparency — telemetry must be write-only: the canonical
      [Vids.Snapshot.digest] of the two engines must be byte-identical.
      Divergence fails the run, and so CI.

   The instrumented run's exports are written next to the JSON artifact
   (obs_sample.prom, obs_sample_trace.jsonl) so CI uploads a sample of
   both exporter formats.

   Scale comes from argv: [obs_bench.exe 400 3] replays 400 calls with
   best-of-3 timing (the CI smoke preset); the default is 2000 calls,
   best-of-5. *)

(* The trace itself (dialog mix, rogue floods, horizon margin) lives in
   {!Workload} and is shared with the profiling bench, so the two
   artifacts describe the same traffic. *)

(* One replay over a private clock; with [telemetry] the engine carries a
   full registry + flight recorder, the exact configuration the CLI's
   --metrics-out/--trace-out flags produce. *)
let replay ~telemetry ~horizon trace =
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create sched in
  let obs =
    if not telemetry then None
    else begin
      let metrics = Obs.Metrics.create () in
      let flight = Obs.Trace.create ~capacity:256 () in
      Vids.Engine.set_telemetry engine ~metrics ~flight ();
      Some (metrics, flight)
    end
  in
  ignore (Vids.Trace.schedule_into sched engine trace);
  Dsim.Scheduler.run_until sched horizon;
  (engine, obs)

let () =
  let calls = try int_of_string Sys.argv.(1) with _ -> 2000 in
  let repeats = try int_of_string Sys.argv.(2) with _ -> 5 in
  let trace = Workload.make_trace ~calls in
  let n_records = List.length trace in
  let horizon = Workload.horizon ~calls in
  Printf.printf "trace: %d calls, %d records, best of %d\n%!" calls n_records repeats;
  let base_s =
    Bench_common.best_of repeats (fun () -> ignore (replay ~telemetry:false ~horizon trace))
  in
  let inst_s =
    Bench_common.best_of repeats (fun () -> ignore (replay ~telemetry:true ~horizon trace))
  in
  (* Transparency: one fresh run per mode, digests compared at the horizon. *)
  let bare_engine, _ = replay ~telemetry:false ~horizon trace in
  let inst_engine, obs = replay ~telemetry:true ~horizon trace in
  let metrics, flight = Option.get obs in
  let bare_digest = Vids.Snapshot.digest ~at:horizon bare_engine in
  let inst_digest = Vids.Snapshot.digest ~at:horizon inst_engine in
  let transparent = String.equal bare_digest inst_digest in
  let overhead = (inst_s -. base_s) /. base_s in
  (* The 5% gate carries a 10 ms epsilon so sub-second smoke runs aren't
     judged on scheduler noise. *)
  let gate_passed = inst_s <= (base_s *. 1.05) +. 0.010 in
  Printf.printf "baseline:     %.3f s (%.0f records/s)\n" base_s (float_of_int n_records /. base_s);
  Printf.printf "instrumented: %.3f s (%.0f records/s), overhead %+.2f%%\n" inst_s
    (float_of_int n_records /. inst_s)
    (100. *. overhead);
  Printf.printf "digest identical with telemetry on: %b\n" transparent;
  let snap = Obs.Metrics.snapshot metrics in
  let packets_seen = Obs.Metrics.total snap "vids_packets_total" in
  Printf.printf "registry: %d rows, %d packets counted; flight recorder: %d events\n"
    (List.length snap.Obs.Metrics.rows)
    packets_seen
    (Obs.Trace.recorded flight);
  (* Sample exports for the CI artifact. *)
  Obs.Export.write_metrics ~path:"obs_sample.prom" snap;
  (try Sys.remove "obs_sample_trace.jsonl" with Sys_error _ -> ());
  Obs.Export.append_trace ~reason:"bench end of run" ~path:"obs_sample_trace.jsonl"
    (Obs.Trace.entries flight);
  print_endline "wrote obs_sample.prom, obs_sample_trace.jsonl";
  let module J = Bench_common.Json in
  Bench_common.write_json ~path:"BENCH_obs.json"
    (J.obj
       [
         ("bench", J.quote "obs");
         ("calls", J.int calls);
         ("records", J.int n_records);
         ("repeats", J.int repeats);
         ("baseline_s", J.float base_s);
         ("instrumented_s", J.float inst_s);
         ("overhead_fraction", J.float overhead);
         ("baseline_records_per_s", J.float (float_of_int n_records /. base_s));
         ("instrumented_records_per_s", J.float (float_of_int n_records /. inst_s));
         ("digest_identical", J.bool transparent);
         ("registry_rows", J.int (List.length snap.Obs.Metrics.rows));
         ("packets_counted", J.int packets_seen);
         ("flight_events", J.int (Obs.Trace.recorded flight));
         ( "gate",
           J.obj
             [
               ("max_overhead_fraction", J.float 0.05);
               ("epsilon_s", J.float 0.010);
               ("passed", J.bool gate_passed);
             ] );
       ]
    ^ "\n");
  if not transparent then begin
    prerr_endline "FAIL: telemetry changed the engine digest";
    exit 1
  end;
  if not gate_passed then begin
    Printf.eprintf "FAIL: telemetry overhead %.2f%% exceeds the 5%% gate\n" (100. *. overhead);
    exit 1
  end
