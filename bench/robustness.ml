(* Robustness bench: state churn under a distinct-Call-ID INVITE flood.

   An attacker who never completes a handshake can grow the fact base with
   one abandoned call record per INVITE.  This scenario feeds the engine
   [n] INVITEs, each with a fresh Call-ID, and compares an ungoverned
   engine (every record retained) against the governed preset (caps +
   ageing sweep).  Results go to BENCH_robustness.json so the bounded-
   memory claim is checkable from CI artifacts. *)

let sec = Dsim.Time.of_sec

let invite ~call_id =
  Printf.sprintf
    "INVITE sip:bob@b.example SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>\r\n\
     Call-ID: %s\r\n\
     CSeq: 1 INVITE\r\n\
     Contact: <sip:alice@10.1.0.10:5060>\r\n\
     \r\n"
    call_id call_id call_id

type result = {
  label : string;
  packets : int;
  active_calls : int;
  peak_calls : int;
  calls_evicted : int;
  calls_swept : int;
  alerts : int;
  live_words : int;
  wall_s : float;
}

let churn ~label ~config ~n =
  let (stats, counters, engine), wall_s =
    Bench_common.timed (fun () ->
        let sched = Dsim.Scheduler.create () in
        let engine = Vids.Engine.create ~config sched in
        let alloc = Dsim.Packet.allocator () in
        let src = Dsim.Addr.v "203.0.113.66" 5060 in
        let dst = Dsim.Addr.v "10.2.0.2" 5060 in
        for i = 0 to n - 1 do
          (* One packet per simulated millisecond, advancing the clock so
             sweep timers get a chance to fire. *)
          let at = Dsim.Time.of_ms (float_of_int i) in
          Dsim.Scheduler.run_until sched at;
          let packet =
            Dsim.Packet.make alloc ~src ~dst ~sent_at:at
              (invite ~call_id:(Printf.sprintf "churn-%d" i))
          in
          Vids.Engine.process_packet engine packet
        done;
        Dsim.Scheduler.run_until sched
          (Dsim.Time.add (Dsim.Time.of_ms (float_of_int n)) (sec 1.0));
        (Vids.Engine.memory_stats engine, Vids.Engine.counters engine, engine))
  in
  let live = Bench_common.live_words () in
  (* Keep the engine reachable until after the heap measurement. *)
  ignore (Sys.opaque_identity engine);
  {
    label;
    packets = n;
    active_calls = stats.Vids.Fact_base.active_calls;
    peak_calls = stats.Vids.Fact_base.peak_calls;
    calls_evicted = stats.Vids.Fact_base.calls_evicted;
    calls_swept = stats.Vids.Fact_base.calls_swept;
    alerts = counters.Vids.Engine.alerts_raised;
    live_words = live;
    wall_s;
  }

let json_of_result r =
  Printf.sprintf
    "    {\"scenario\": %S, \"packets\": %d, \"active_calls\": %d, \"peak_calls\": %d,\n\
    \     \"calls_evicted\": %d, \"calls_swept\": %d, \"alerts\": %d, \"live_words\": %d,\n\
    \     \"wall_s\": %.3f}"
    r.label r.packets r.active_calls r.peak_calls r.calls_evicted r.calls_swept r.alerts
    r.live_words r.wall_s

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 100_000 in
  (* The ungoverned baseline holds every record (~1k words per call), so it
     runs on a smaller slice; the governed run takes the full flood. *)
  let ungoverned =
    churn ~label:"state_churn_unbounded" ~config:Vids.Config.default ~n:(min n 20_000)
  in
  let governed_config = Vids.Config.governed Vids.Config.default in
  let governed = churn ~label:"state_churn_governed" ~config:governed_config ~n in
  let results = [ ungoverned; governed ] in
  List.iter
    (fun r ->
      Printf.printf
        "%-24s %d packets: active=%d peak=%d evicted=%d swept=%d alerts=%d live=%dw %.2fs\n"
        r.label r.packets r.active_calls r.peak_calls r.calls_evicted r.calls_swept r.alerts
        r.live_words r.wall_s)
    results;
  let bounded =
    governed.active_calls <= governed_config.Vids.Config.max_calls
    && governed.peak_calls <= governed_config.Vids.Config.max_calls
  in
  Printf.printf "governed run bounded by max_calls=%d: %b\n"
    governed_config.Vids.Config.max_calls bounded;
  Bench_common.write_json ~path:"BENCH_robustness.json"
    (Printf.sprintf
       "{\n  \"bench\": \"robustness\",\n  \"max_calls\": %d,\n  \"bounded\": %b,\n  \"results\": [\n%s\n  ]\n}\n"
       governed_config.Vids.Config.max_calls bounded
       (String.concat ",\n" (List.map json_of_result results)));
  if not bounded then exit 1
