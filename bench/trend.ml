(* The bench trend gate: compare a fresh BENCH_profile.json against the
   committed baseline and fail CI when a pipeline stage regressed.

   Wall-clock seconds are machine-dependent, so the gate compares the
   machine-stable shape of the profile instead:

   - per-stage *share* of end-to-end drive time (how the budget is
     split), and
   - per-stage *bytes allocated per record* (deterministic for a
     deterministic workload).

   A stage regresses when the current value exceeds the baseline by more
   than 15% relative plus an absolute floor (0.02 share / 64 B per
   record) that keeps sub-percent stages from tripping the gate on
   noise.  Stages that appear or disappear between the two files are
   reported as notes, not failures — adding instrumentation must not
   need a baseline edit to land.

   Usage: trend.exe BASELINE.json CURRENT.json
   Exit codes: 0 clean, 1 regression, 2 usage or malformed input. *)

module J = Bench_common.Json_in

let usage () =
  prerr_endline "usage: trend.exe BASELINE.json CURRENT.json";
  exit 2

let num_field obj key =
  match J.member key obj with Some (J.Num f) -> Some f | _ -> None

(* stage name -> (share, bytes_per_record) from the artifact's "stages"
   array; either metric may be absent (older artifacts). *)
let stages_of path =
  let doc = try J.of_file path with
    | J.Malformed msg ->
        Printf.eprintf "%s: malformed JSON: %s\n" path msg;
        exit 2
    | Sys_error msg ->
        Printf.eprintf "cannot read %s: %s\n" path msg;
        exit 2
  in
  match J.member "stages" doc with
  | Some (J.Arr rows) ->
      List.filter_map
        (fun row ->
          match J.member "stage" row with
          | Some (J.Str name) ->
              Some (name, (num_field row "share", num_field row "bytes_per_record"))
          | _ -> None)
        rows
  | _ ->
      Printf.eprintf "%s: no \"stages\" array\n" path;
      exit 2

(* Regression: current exceeds baseline by >15% relative plus the
   metric's absolute floor. *)
let regressed ~floor ~base ~cur = cur > (base *. 1.15) +. floor

let () =
  if Array.length Sys.argv <> 3 then usage ();
  let base_path = Sys.argv.(1) and cur_path = Sys.argv.(2) in
  let base = stages_of base_path in
  let cur = stages_of cur_path in
  let failures = ref 0 in
  let check name metric floor b c =
    match (b, c) with
    | Some b, Some c when regressed ~floor ~base:b ~cur:c ->
        incr failures;
        Printf.printf "REGRESSION %-16s %s: %.4f -> %.4f (limit %.4f)\n" name metric b c
          ((b *. 1.15) +. floor)
    | Some b, Some c -> Printf.printf "ok         %-16s %s: %.4f -> %.4f\n" name metric b c
    | _ -> ()
  in
  List.iter
    (fun (name, (b_share, b_bpr)) ->
      match List.assoc_opt name cur with
      | None -> Printf.printf "note: stage %s disappeared (baseline only)\n" name
      | Some (c_share, c_bpr) ->
          check name "share   " 0.02 b_share c_share;
          check name "B/record" 64.0 b_bpr c_bpr)
    base;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name base) then
        Printf.printf "note: stage %s is new (no baseline)\n" name)
    cur;
  if !failures > 0 then begin
    Printf.eprintf "FAIL: %d stage metric(s) regressed vs %s\n" !failures base_path;
    exit 1
  end;
  Printf.printf "trend gate passed: %d baseline stage(s) within limits\n" (List.length base)
