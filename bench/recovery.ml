(* Recovery bench: checkpoint cost, recovery latency, divergence.

   Three questions, answered in BENCH_recovery.json:

   1. What does a checkpoint cost as the fact base grows?  (capture +
      serialize wall time and snapshot size at several occupancy levels)
   2. How long does recovery take?  (parse + restore + suffix replay wall
      time from several checkpoint cut points over the same trace)
   3. Does a recovered engine diverge from one that never crashed?  (the
      canonical digests must be byte-identical — the run fails otherwise,
      and so does CI)

   Scale comes from argv: [recovery.exe 400] caps the churn at 400 calls
   (the CI smoke preset); the default is 2000. *)

let ms = Dsim.Time.of_ms

let sip_addr host = Dsim.Addr.v host 5060

let invite ~call_id ~port =
  let body =
    Printf.sprintf
      "v=0\r\no=alice 0 0 IN IP4 10.1.0.10\r\ns=-\r\nc=IN IP4 10.1.0.10\r\nt=0 0\r\nm=audio %d RTP/AVP 18\r\n"
      port
  in
  Printf.sprintf
    "INVITE sip:bob@b.example SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>\r\n\
     Call-ID: %s\r\n\
     CSeq: 1 INVITE\r\n\
     Contact: <sip:alice@10.1.0.10:5060>\r\n\
     Content-Type: application/sdp\r\n\
     Content-Length: %d\r\n\r\n%s"
    call_id call_id call_id (String.length body) body

let response ~call_id ~code ~cseq ~sdp ~port =
  let body =
    if sdp then
      Printf.sprintf
        "v=0\r\no=bob 0 0 IN IP4 10.2.0.10\r\ns=-\r\nc=IN IP4 10.2.0.10\r\nt=0 0\r\nm=audio %d RTP/AVP 18\r\n"
        port
    else ""
  in
  Printf.sprintf
    "SIP/2.0 %d X\r\nVia: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\nFrom: <sip:alice@a.example>;tag=ta-%s\r\nTo: <sip:bob@b.example>;tag=tb-%s\r\nCall-ID: %s\r\nCSeq: %s\r\n%sContent-Length: %d\r\n\r\n%s"
    code call_id call_id call_id call_id cseq
    (if sdp then "Content-Type: application/sdp\r\n" else "")
    (String.length body) body

let ack ~call_id =
  Printf.sprintf
    "ACK sip:bob@10.2.0.10 SIP/2.0\r\nVia: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKa-%s\r\nFrom: <sip:alice@a.example>;tag=ta-%s\r\nTo: <sip:bob@b.example>;tag=tb-%s\r\nCall-ID: %s\r\nCSeq: 1 ACK\r\n\r\n"
    call_id call_id call_id call_id

let bye ~call_id =
  Printf.sprintf
    "BYE sip:bob@10.2.0.10 SIP/2.0\r\nVia: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKb-%s\r\nFrom: <sip:alice@a.example>;tag=ta-%s\r\nTo: <sip:bob@b.example>;tag=tb-%s\r\nCall-ID: %s\r\nCSeq: 2 BYE\r\n\r\n"
    call_id call_id call_id call_id

let rtp_bytes ~seq =
  Rtp.Rtp_packet.encode
    (Rtp.Rtp_packet.make ~payload_type:18 ~sequence:seq ~timestamp:(Int32.of_int (160 * seq))
       ~ssrc:77l (String.make 20 'v'))

(* A dialog-rich trace: every 50 ms a new call starts.  Two in three run a
   full dialog with a short media burst; one in three is abandoned after
   the INVITE (machines parked mid-state, exactly what a checkpoint must
   carry).  One in five established calls never sends BYE, so the fact
   base keeps live calls with armed timers at every cut point. *)
let make_trace ~calls =
  let records = ref [] in
  let add at src dst payload = records := { Vids.Trace.at; src; dst; payload } :: !records in
  let a_sig = sip_addr "10.1.0.2" and b_sig = sip_addr "10.2.0.2" in
  for i = 0 to calls - 1 do
    let call_id = Printf.sprintf "bench-%d" i in
    let t0 = ms (float_of_int (50 * i)) in
    let port = 16384 + (2 * (i mod 2048)) in
    let ( +& ) a b = Dsim.Time.add a b in
    add t0 a_sig b_sig (invite ~call_id ~port);
    if i mod 3 <> 2 then begin
      add (t0 +& ms 20.) b_sig a_sig (response ~call_id ~code:180 ~cseq:"1 INVITE" ~sdp:false ~port);
      add (t0 +& ms 40.) b_sig a_sig (response ~call_id ~code:200 ~cseq:"1 INVITE" ~sdp:true ~port);
      add (t0 +& ms 60.) a_sig b_sig (ack ~call_id);
      let media_src = Dsim.Addr.v "10.1.0.10" port in
      let media_dst = Dsim.Addr.v "10.2.0.10" port in
      for s = 0 to 4 do
        add (t0 +& ms (80. +. (20. *. float_of_int s))) media_src media_dst (rtp_bytes ~seq:s)
      done;
      if i mod 5 <> 4 then begin
        add (t0 +& ms 600.) a_sig b_sig (bye ~call_id);
        add (t0 +& ms 620.) b_sig a_sig (response ~call_id ~code:200 ~cseq:"2 BYE" ~sdp:false ~port)
      end
    end
  done;
  List.rev !records

(* ------------------------------------------------------------------ *)
(* 1. Checkpoint cost vs fact-base occupancy                           *)
(* ------------------------------------------------------------------ *)

type cost = {
  occupancy : int;
  snapshot_bytes : int;
  capture_s : float;
  parse_restore_s : float;
}

let checkpoint_cost ~calls =
  let trace = make_trace ~calls in
  let horizon = ms (float_of_int ((50 * calls) + 700)) in
  let sched, engine = Vids.Trace.replay_until ~until:horizon trace in
  let at = Dsim.Scheduler.now sched in
  let text, capture_s =
    Bench_common.timed (fun () ->
        Vids.Snapshot.to_string (Vids.Snapshot.capture ~seq:1 ~at engine))
  in
  let parse_restore_s =
    Bench_common.time (fun () ->
        let reparsed =
          match Vids.Snapshot.of_string text with
          | Ok s -> s
          | Error e -> failwith ("snapshot reparse failed: " ^ e)
        in
        match Vids.Snapshot.restore reparsed with
        | Ok _ -> ()
        | Error e -> failwith ("snapshot restore failed: " ^ e))
  in
  let stats = Vids.Engine.memory_stats engine in
  {
    occupancy = stats.Vids.Fact_base.active_calls + stats.Vids.Fact_base.detectors;
    snapshot_bytes = String.length text;
    capture_s;
    parse_restore_s;
  }

(* ------------------------------------------------------------------ *)
(* 2 + 3. Recovery latency and divergence                              *)
(* ------------------------------------------------------------------ *)

type recovery_run = {
  label : string;
  cut_s : float;
  replayed : int;
  recover_s : float;
  divergent : bool;
}

let recovery_run ~label ~config ~trace ~horizon ~cut =
  let _, straight = Vids.Trace.replay_until ?config ~until:horizon trace in
  let reference = Vids.Snapshot.digest ~at:horizon straight in
  let sched, engine = Vids.Trace.replay_until ?config ~until:cut trace in
  let snap = Vids.Snapshot.capture ~seq:1 ~at:(Dsim.Scheduler.now sched) engine in
  let snap =
    match Vids.Snapshot.of_string (Vids.Snapshot.to_string snap) with
    | Ok s -> s
    | Error e -> failwith ("checkpoint round-trip failed: " ^ e)
  in
  let recovered_result, recover_s =
    Bench_common.timed (fun () -> Vids.Recovery.recover ?config ~trace ~until:horizon snap)
  in
  match recovered_result with
  | Error e -> failwith ("recovery failed: " ^ e)
  | Ok outcome ->
      let recovered = Vids.Snapshot.digest ~at:horizon outcome.Vids.Recovery.engine in
      {
        label;
        cut_s = Dsim.Time.to_sec cut;
        replayed = outcome.Vids.Recovery.replayed;
        recover_s;
        divergent = not (String.equal recovered reference);
      }

(* ------------------------------------------------------------------ *)

let json_of_cost c =
  Printf.sprintf
    "    {\"occupancy\": %d, \"snapshot_bytes\": %d, \"capture_s\": %.6f, \"parse_restore_s\": %.6f}"
    c.occupancy c.snapshot_bytes c.capture_s c.parse_restore_s

let json_of_recovery r =
  Printf.sprintf
    "    {\"scenario\": %S, \"cut_s\": %.3f, \"replayed\": %d, \"recover_s\": %.6f, \"divergent\": %b}"
    r.label r.cut_s r.replayed r.recover_s r.divergent

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 2000 in
  let sizes = List.sort_uniq compare [ max 1 (n / 8); max 1 (n / 4); max 1 (n / 2); n ] in
  let costs = List.map (fun calls -> checkpoint_cost ~calls) sizes in
  List.iter
    (fun c ->
      Printf.printf "checkpoint @ %4d records: %7d B, capture %.2f ms, restore %.2f ms\n"
        c.occupancy c.snapshot_bytes (1000. *. c.capture_s) (1000. *. c.parse_restore_s))
    costs;
  (* Divergence over a fixed 120-call trace from several cut points, under
     both the default and the governed preset (caps, sweep timer armed). *)
  let calls = min 120 (max 20 (n / 10)) in
  let trace = make_trace ~calls in
  let horizon = ms (float_of_int ((50 * calls) + 700)) in
  let fraction f = Dsim.Time.of_us (int_of_float (f *. float_of_int (Dsim.Time.to_us horizon))) in
  let cuts = [ fraction 0.25; fraction 0.5; fraction 0.75; Dsim.Time.sub horizon (ms 100.) ] in
  let runs =
    List.concat_map
      (fun cut ->
        [
          recovery_run ~label:"default" ~config:None ~trace ~horizon ~cut;
          recovery_run ~label:"governed"
            ~config:(Some (Vids.Config.governed Vids.Config.default))
            ~trace ~horizon ~cut;
        ])
      cuts
  in
  List.iter
    (fun r ->
      Printf.printf "recovery (%s) cut=%.1fs: replayed %d packets in %.2f ms, divergent=%b\n"
        r.label r.cut_s r.replayed (1000. *. r.recover_s) r.divergent)
    runs;
  let divergence_zero = List.for_all (fun r -> not r.divergent) runs in
  Printf.printf "post-recovery divergence zero: %b\n" divergence_zero;
  Bench_common.write_json ~path:"BENCH_recovery.json"
    (Printf.sprintf
       "{\n\
       \  \"bench\": \"recovery\",\n\
       \  \"divergence_zero\": %b,\n\
       \  \"checkpoint_cost\": [\n%s\n  ],\n\
       \  \"recovery\": [\n%s\n  ]\n\
        }\n"
       divergence_zero
       (String.concat ",\n" (List.map json_of_cost costs))
       (String.concat ",\n" (List.map json_of_recovery runs)));
  if not divergence_zero then exit 1
