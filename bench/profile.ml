(* Profiling bench: what does the hot-path profiler itself cost, and
   where does the pipeline's time actually go?

   Three gates, answered in BENCH_profile.json:

   1. Overhead — the shared {!Workload} trace is replayed through a bare
      engine and through one carrying an {!Obs.Prof} profiler (every
      parse/dispatch/detect span live).  Best-of-N drive times; the gate
      requires the profiled run within 5% of the baseline plus a 10 ms
      epsilon, the same contract the telemetry bench enforces.
   2. Transparency — profiling must be write-only: the canonical
      [Vids.Snapshot.digest] of the two engines must be byte-identical.
   3. Coverage — the per-stage self times must account for at least 90%
      of the measured end-to-end drive time, i.e. the span set actually
      explains where the wall clock went (a [Drive] span around the
      scheduler run turns uninstrumented time into explicit self time).

   The JSON carries the full per-stage breakdown (shares, quantiles,
   bytes/record) — the rows bench/trend.exe compares against a committed
   baseline to catch per-stage regressions in CI.

   Scale comes from argv: [profile.exe 400 3] replays 400 calls with
   best-of-3 timing (the CI smoke preset); the default is 2000 calls,
   best-of-5. *)

(* One replay over a private clock.  Event scheduling ([schedule_into])
   allocates the whole timeline up front, so it stays outside the timed
   window: both modes time only the drive phase the profiler actually
   instruments. *)
let replay ~profiled ~horizon trace =
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create sched in
  let prof =
    if not profiled then None
    else begin
      let p = Obs.Prof.create () in
      Vids.Engine.set_profiler engine (Some p);
      Some p
    end
  in
  ignore (Vids.Trace.schedule_into sched engine trace);
  let drive_s =
    Bench_common.time (fun () ->
        (match prof with Some p -> Obs.Prof.enter p Obs.Prof.Drive | None -> ());
        Dsim.Scheduler.run_until sched horizon;
        match prof with Some p -> Obs.Prof.exit p Obs.Prof.Drive | None -> ())
  in
  (engine, prof, drive_s)

let () =
  let calls = try int_of_string Sys.argv.(1) with _ -> 2000 in
  let repeats = try int_of_string Sys.argv.(2) with _ -> 5 in
  let trace = Workload.make_trace ~calls in
  let n_records = List.length trace in
  let horizon = Workload.horizon ~calls in
  Printf.printf "trace: %d calls, %d records, best of %d\n%!" calls n_records repeats;
  let best_of n f =
    if n <= 0 then invalid_arg "best_of";
    let best = ref infinity in
    for _ = 1 to n do
      let _, _, s = f () in
      if s < !best then best := s
    done;
    !best
  in
  let base_s = best_of repeats (fun () -> replay ~profiled:false ~horizon trace) in
  let prof_s = best_of repeats (fun () -> replay ~profiled:true ~horizon trace) in
  (* Transparency + breakdown: one fresh run per mode, digests compared at
     the horizon, the profiled run's report kept for the artifact. *)
  let bare_engine, _, _ = replay ~profiled:false ~horizon trace in
  let prof_engine, prof, drive_s = replay ~profiled:true ~horizon trace in
  let prof = Option.get prof in
  let bare_digest = Vids.Snapshot.digest ~at:horizon bare_engine in
  let prof_digest = Vids.Snapshot.digest ~at:horizon prof_engine in
  let transparent = String.equal bare_digest prof_digest in
  Obs.Prof.sample_gc prof;
  let report = Obs.Prof.report_of_snapshot (Obs.Metrics.snapshot (Obs.Prof.registry prof)) in
  let covered_s = Obs.Prof.total_seconds report in
  let coverage = if drive_s > 0. then covered_s /. drive_s else 0. in
  let overhead = (prof_s -. base_s) /. base_s in
  (* Same 5% + 10 ms contract as the telemetry gate. *)
  let overhead_ok = prof_s <= (base_s *. 1.05) +. 0.010 in
  let coverage_ok = coverage >= 0.90 in
  let gate_passed = overhead_ok && coverage_ok && transparent in
  Printf.printf "baseline: %.3f s (%.0f records/s)\n" base_s (float_of_int n_records /. base_s);
  Printf.printf "profiled: %.3f s (%.0f records/s), overhead %+.2f%%\n" prof_s
    (float_of_int n_records /. prof_s)
    (100. *. overhead);
  Printf.printf "digest identical with profiling on: %b\n" transparent;
  Printf.printf "span coverage: %.1f%% of %.3f s drive time across %d stages\n"
    (100. *. coverage) drive_s (List.length report);
  Format.printf "%a%!" (Obs.Prof.pp_table ~records:n_records ~total_s:drive_s) report;
  let live = Bench_common.live_words () in
  let module J = Bench_common.Json in
  Bench_common.write_json ~path:"BENCH_profile.json"
    (J.obj
       [
         ("bench", J.quote "profile");
         ("calls", J.int calls);
         ("records", J.int n_records);
         ("repeats", J.int repeats);
         ("baseline_s", J.float base_s);
         ("profiled_s", J.float prof_s);
         ("overhead_fraction", J.float overhead);
         ("baseline_records_per_s", J.float (float_of_int n_records /. base_s));
         ("profiled_records_per_s", J.float (float_of_int n_records /. prof_s));
         ("digest_identical", J.bool transparent);
         ("coverage_fraction", J.float coverage);
         ("live_words", J.int live);
         ("stages", Obs.Prof.report_json ~records:n_records ~total_s:drive_s report);
         ( "gate",
           J.obj
             [
               ("max_overhead_fraction", J.float 0.05);
               ("epsilon_s", J.float 0.010);
               ("min_coverage_fraction", J.float 0.90);
               ("passed", J.bool gate_passed);
             ] );
       ]
    ^ "\n");
  if not transparent then begin
    prerr_endline "FAIL: profiling changed the engine digest";
    exit 1
  end;
  if not overhead_ok then begin
    Printf.eprintf "FAIL: profiling overhead %.2f%% exceeds the 5%% gate\n" (100. *. overhead);
    exit 1
  end;
  if not coverage_ok then begin
    Printf.eprintf "FAIL: span coverage %.1f%% below the 90%% gate\n" (100. *. coverage);
    exit 1
  end
