(* Helpers shared by the bench executables: wall-clock timing and JSON
   result files.  Every bench emits a BENCH_*.json artifact consumed by
   CI; the file writing, the "wrote ..." announcement and the timing
   boilerplate live here so the benches only format their own rows. *)

(** JSON emission (RFC 8259 strings, finite-safe floats) — the same
    helpers the telemetry exporters use. *)
module Json = Obs.Json

(** [timed f] runs [f ()] and returns its result with the elapsed
    wall-clock seconds. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(** [time f] is the elapsed wall-clock seconds of [f ()] alone. *)
let time f = snd (timed f)

(** [best_of n f] runs [f] [n] times and returns the fastest wall-clock
    seconds — the standard way to compare two pipelines while shrugging
    off scheduler noise.  [n] must be positive. *)
let best_of n f =
  if n <= 0 then invalid_arg "Bench_common.best_of: n must be positive";
  let best = ref infinity in
  for _ = 1 to n do
    let t = time f in
    if t < !best then best := t
  done;
  !best

(** [write_json ~path contents] writes the artifact and announces it on
    stdout, the contract CI greps for. *)
let write_json ~path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path

(** [live_words ()] is the live major-heap word count after a full
    collection — the benches' canonical steady-state memory probe. *)
let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

(** Minimal JSON reader — just enough for the trend gate to re-read the
    BENCH_*.json artifacts {!write_json} emitted (RFC 8259 subset, BMP
    escapes only, everything in memory).  Raises {!Json_in.Malformed} on
    anything it does not understand. *)
module Json_in = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Malformed of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected %C" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.equal (String.sub s !pos l) lit then begin
        pos := !pos + l;
        v
      end
      else fail "bad literal"
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "bad escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if !pos + 4 >= n then fail "bad unicode escape";
                let code =
                  match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                  | Some c -> c
                  | None -> fail "bad unicode escape"
                in
                (* UTF-8 for the BMP; our emitter never writes surrogate
                   pairs. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                pos := !pos + 4
            | c -> fail (Printf.sprintf "bad escape %C" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while !pos < n && num_char s.[!pos] do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((key, v) :: acc)
              | Some '}' ->
                  incr pos;
                  List.rev ((key, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            Arr []
          end
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elems (v :: acc)
              | Some ']' ->
                  incr pos;
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (elems [])
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let of_file path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    parse s

  let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
end
