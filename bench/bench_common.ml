(* Helpers shared by the bench executables: wall-clock timing and JSON
   result files.  Every bench emits a BENCH_*.json artifact consumed by
   CI; the file writing, the "wrote ..." announcement and the timing
   boilerplate live here so the benches only format their own rows. *)

(** JSON emission (RFC 8259 strings, finite-safe floats) — the same
    helpers the telemetry exporters use. *)
module Json = Obs.Json

(** [timed f] runs [f ()] and returns its result with the elapsed
    wall-clock seconds. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(** [time f] is the elapsed wall-clock seconds of [f ()] alone. *)
let time f = snd (timed f)

(** [best_of n f] runs [f] [n] times and returns the fastest wall-clock
    seconds — the standard way to compare two pipelines while shrugging
    off scheduler noise.  [n] must be positive. *)
let best_of n f =
  if n <= 0 then invalid_arg "Bench_common.best_of: n must be positive";
  let best = ref infinity in
  for _ = 1 to n do
    let t = time f in
    if t < !best then best := t
  done;
  !best

(** [write_json ~path contents] writes the artifact and announces it on
    stdout, the contract CI greps for. *)
let write_json ~path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path
