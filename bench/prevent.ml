(* Prevention bench: enforcement measured end-to-end, gated in
   BENCH_prevent.json (CI fails when a gate does):

   A. Containment — an INVITE flood and legitimate call churn stream
      through the enforcing daemon.  Gates: the flood raises its alert
      and the gate then stops the attack traffic (all but the detection
      window is dropped); every installed rule names the attacker and
      every legitimate packet passes (zero false blocks); an offline
      replay of the same capture through a fresh gate converges to the
      daemon's engine digest AND its enforcement digest — the
      digest-pinned determinism the recovery story rests on.
   B. kill -9 mid-block — the same capture, hard-killed while the block
      is live; recovery from snapshot + journal + capture must converge
      to the uninterrupted run's enforcement digest and alert set, with
      the surviving rule's TTL intact.
   C. Response coverage — every [lib/attack] scenario runs on the full
      Figure-7 testbed with the enforcement gate on the sensor tap;
      each must show attack -> alert -> the mapped response (a block
      rule, a forced teardown, or both), and the flood-shaped attacks
      must measurably stop (packets dying at the gate).

   Scale from argv: [prevent.exe 400] legit calls (the default); the
   flood itself is fixed at 60 INVITEs. *)

module J = Obs.Json

let ms = Dsim.Time.of_ms
let sec = Dsim.Time.of_sec

let attacker_host = "198.51.100.99"

let invite ~call_id ~from_host ~caller ~callee =
  Printf.sprintf
    "INVITE sip:%s SIP/2.0\r\n\
     Via: SIP/2.0/UDP %s:5060;branch=z9hG4bK%s\r\n\
     From: <sip:%s>;tag=ta-%s\r\n\
     To: <sip:%s>\r\n\
     Call-ID: %s\r\n\
     CSeq: 1 INVITE\r\n\
     Contact: <sip:%s@%s:5060>\r\n\r\n"
    callee from_host call_id caller call_id callee call_id caller from_host

let response ~call_id ~caller ~callee ~code ~cseq =
  Printf.sprintf
    "SIP/2.0 %d X\r\n\
     Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\n\
     From: <sip:%s>;tag=ta-%s\r\n\
     To: <sip:%s>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: %s\r\nContent-Length: 0\r\n\r\n"
    code call_id caller call_id callee call_id call_id cseq

let ack ~call_id ~caller ~callee =
  Printf.sprintf
    "ACK sip:%s SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKa-%s\r\n\
     From: <sip:%s>;tag=ta-%s\r\n\
     To: <sip:%s>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: 1 ACK\r\n\r\n"
    callee call_id caller call_id callee call_id call_id

let bye ~call_id ~caller ~callee =
  Printf.sprintf
    "BYE sip:%s SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKb-%s\r\n\
     From: <sip:%s>;tag=ta-%s\r\n\
     To: <sip:%s>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: 2 BYE\r\n\r\n"
    callee call_id caller call_id callee call_id call_id

(* Legitimate churn: each call gets its own callee AOR so nothing in the
   benign load resembles a flood, plus the attack: a burst of INVITEs
   from one host, each with a fresh Call-ID, aimed at one victim AOR —
   the paper's INVITE-flood shape.  The flood starts a second in, while
   legit calls keep arriving before, during and after the block. *)
let build_records ~legit_calls ~flood =
  let records = ref [] in
  let add at src dst payload = records := { Vids.Trace.at; src; dst; payload } :: !records in
  let a_sig = Dsim.Addr.v "10.1.0.2" 5060 and b_sig = Dsim.Addr.v "10.2.0.2" 5060 in
  let ( +& ) = Dsim.Time.add in
  for i = 0 to legit_calls - 1 do
    let call_id = Printf.sprintf "legit-%d" i in
    let caller = Printf.sprintf "u%d@a.example" i in
    let callee = Printf.sprintf "peer%d@b.example" i in
    let t0 = ms (float_of_int (75 * i)) in
    add t0 a_sig b_sig (invite ~call_id ~from_host:"10.1.0.2" ~caller ~callee);
    add (t0 +& ms 20.) b_sig a_sig (response ~call_id ~caller ~callee ~code:200 ~cseq:"1 INVITE");
    add (t0 +& ms 40.) a_sig b_sig (ack ~call_id ~caller ~callee);
    add (t0 +& ms 400.) a_sig b_sig (bye ~call_id ~caller ~callee);
    add (t0 +& ms 420.) b_sig a_sig (response ~call_id ~caller ~callee ~code:200 ~cseq:"2 BYE")
  done;
  let atk = Dsim.Addr.v attacker_host 5060 in
  for i = 0 to flood - 1 do
    add
      (sec 1.0 +& ms (float_of_int (40 * i)))
      atk b_sig
      (invite
         ~call_id:(Printf.sprintf "flood-%d" i)
         ~from_host:attacker_host
         ~caller:("mallory@" ^ attacker_host)
         ~callee:"victim@b.example")
  done;
  List.stable_sort
    (fun (a : Vids.Trace.record) b -> Dsim.Time.compare a.Vids.Trace.at b.Vids.Trace.at)
    !records

let tmp suffix = Filename.temp_file "vids_prevent" suffix

let cleanup paths = List.iter (fun p -> if Sys.file_exists p then Sys.remove p) paths

let alert_keys engine =
  List.sort compare (List.map Vids.Alert.dedup_key (Vids.Engine.alerts engine))

let policy = Enforce.Enforcer.default_policy

let run_daemon ?stop ?hard_kill ?on_batch ~config sources =
  let clock = Ingest.Clock.manual () in
  match Ingest.Daemon.run ~clock ?stop ?hard_kill ?on_batch config sources with
  | Error e ->
      Printf.eprintf "FAIL: daemon: %s\n" e;
      exit 1
  | Ok report -> report

(* ------------------------------------------------------------------ *)
(* Phase A: containment + digest-pinned offline replay                 *)
(* ------------------------------------------------------------------ *)

type contain_result = {
  report : Ingest.Daemon.report;
  enforcer : Enforce.Enforcer.t;
  wall_s : float;
  flood_detected : bool;
  contained : bool;
  false_blocks : int;
  legit_all_passed : bool;
  replay_engine_digest_match : bool;
  replay_enforce_digest_match : bool;
}

let offline_replay ~records ~until =
  let sched = Dsim.Scheduler.create () in
  let engine = Vids.Engine.create sched in
  let e = Enforce.Enforcer.create ~policy sched engine in
  let n =
    Vids.Trace.schedule_into ~inject:(fun p -> ignore (Enforce.Enforcer.ingest e p)) sched
      engine records
  in
  ignore n;
  Dsim.Scheduler.run_until sched until;
  (engine, e)

let phase_a ~records ~path ~n_flood =
  let config =
    { Ingest.Daemon.default with Ingest.Daemon.enforce = Some policy; batch = 64 }
  in
  let report, wall_s =
    Bench_common.timed (fun () ->
        run_daemon ~config [ Ingest.Daemon.Pcap_file { path; pace = false } ])
  in
  let e = Option.get report.Ingest.Daemon.enforcer in
  let s = Enforce.Enforcer.stats e in
  let horizon = report.Ingest.Daemon.horizon in
  let flood_detected =
    Vids.Engine.alerts_of_kind report.Ingest.Daemon.engine Vids.Alert.Invite_flood <> []
  in
  (* Containment: the detection window lets a handful of flood INVITEs
     through before the alert trips; everything after the install must
     die at the gate. *)
  let contained = s.Enforce.Enforcer.blocked >= n_flood - 12 && s.Enforce.Enforcer.blocked > 0 in
  (* Zero false blocks: every rule names the attacker and nothing from
     the legitimate sources was stopped — blocked packets plus passed
     packets account for the whole capture, with blocked <= flood. *)
  let rules = Enforce.Block_table.rules (Enforce.Enforcer.table e) ~now:horizon in
  let false_blocks =
    List.length
      (List.filter
         (fun (r : Enforce.Block_table.rule) ->
           let key =
             match r.Enforce.Block_table.scope with
             | Enforce.Block_table.Src k | Enforce.Block_table.Dst k ->
                 Enforce.Source_key.to_string k
           in
           not (String.equal key attacker_host))
         rules)
  in
  let legit_all_passed =
    s.Enforce.Enforcer.blocked <= n_flood
    && s.Enforce.Enforcer.passed + s.Enforce.Enforcer.blocked = List.length records
  in
  (* The determinism pin: a cold offline replay of the recorded capture
     through a fresh gate lands on the same engine state and the same
     rule table. *)
  let offline_engine, offline_e = offline_replay ~records ~until:horizon in
  let replay_engine_digest_match =
    String.equal
      (Vids.Snapshot.digest ~at:horizon offline_engine)
      (Vids.Snapshot.digest ~at:horizon report.Ingest.Daemon.engine)
  in
  let replay_enforce_digest_match =
    String.equal (Enforce.Enforcer.digest offline_e) (Enforce.Enforcer.digest e)
  in
  {
    report;
    enforcer = e;
    wall_s;
    flood_detected;
    contained;
    false_blocks;
    legit_all_passed;
    replay_engine_digest_match;
    replay_enforce_digest_match;
  }

(* ------------------------------------------------------------------ *)
(* Phase B: kill -9 while the block is live                            *)
(* ------------------------------------------------------------------ *)

type kill_result = {
  killed_at_batch : int;
  rules_at_kill : int;
  recover_wall_s : float;
  enforce_digest_match : bool;
  alert_set_match : bool;
  blocks_survived : bool;
}

let phase_b ~records ~path ~(clean : contain_result) =
  let snap = tmp ".ck" in
  let capture = tmp ".trace" in
  let config =
    {
      Ingest.Daemon.default with
      Ingest.Daemon.enforce = Some policy;
      batch = 64;
      checkpoint_every_s = 2.0;
      snapshot_path = Some snap;
      journal_path = Some (snap ^ ".journal");
      record_path = Some capture;
    }
  in
  let n_batches = (List.length records / config.Ingest.Daemon.batch) + 1 in
  let kill_batch = max 2 (n_batches * 7 / 10) in
  let hard_kill = ref false in
  let batches = ref 0 in
  let killed =
    run_daemon ~config ~hard_kill
      ~on_batch:(fun () ->
        incr batches;
        if !batches = kill_batch then hard_kill := true)
      [ Ingest.Daemon.Pcap_file { path; pace = false } ]
  in
  if killed.Ingest.Daemon.stop_reason <> Ingest.Daemon.Killed then begin
    Printf.eprintf "FAIL: hard kill landed after the capture ran out; raise the scale\n";
    exit 1
  end;
  let killed_e = Option.get killed.Ingest.Daemon.enforcer in
  let rules_at_kill =
    (Enforce.Enforcer.stats killed_e).Enforce.Enforcer.table.Enforce.Block_table.active
  in
  if rules_at_kill = 0 then begin
    Printf.eprintf "FAIL: the kill landed before the block was installed; raise the scale\n";
    exit 1
  end;
  let result =
    match
      Bench_common.timed (fun () ->
          Enforce.Recover.recover_files ~policy ~journal_path:(snap ^ ".journal")
            ~trace_path:capture ~until:killed.Ingest.Daemon.horizon ~snapshot_path:snap ())
    with
    | Error e, _ ->
        Printf.eprintf "FAIL: recovery: %s\n" e;
        exit 1
    | Ok (fr, recovered_e), recover_wall_s ->
        let o = fr.Vids.Recovery.outcome in
        (* The clean run installed nothing after the flood window, and
           the TTL outlives the capture, so the recovered rule set must
           digest-match the never-crashed run — same rules, same
           absolute deadlines (TTLs preserved across the crash). *)
        {
          killed_at_batch = kill_batch;
          rules_at_kill;
          recover_wall_s;
          enforce_digest_match =
            String.equal
              (Enforce.Enforcer.digest recovered_e)
              (Enforce.Enforcer.digest clean.enforcer);
          alert_set_match =
            alert_keys o.Vids.Recovery.engine
            = alert_keys clean.report.Ingest.Daemon.engine;
          blocks_survived =
            (Enforce.Enforcer.stats recovered_e).Enforce.Enforcer.table
              .Enforce.Block_table.active > 0;
        }
  in
  cleanup [ snap; snap ^ ".1"; snap ^ ".journal"; capture ];
  result

(* ------------------------------------------------------------------ *)
(* Phase C: each lib/attack scenario -> alert -> enforcement response  *)
(* ------------------------------------------------------------------ *)

module T = Voip.Testbed

type scenario_result = {
  sc_name : string;
  alerted : bool;
  sc_rules : int;
  sc_teardowns : int;
  sc_blocked : int;
  responded : bool;
}

(* What the response map owes each attack kind: a block rule, a forced
   teardown, or both; the flood-shaped attacks must additionally stop —
   packets from the blocked source have to die at the gate once the
   rule lands, not just coexist with it. *)
let scenario_specs =
  [
    ("bye-dos", Vids.Alert.Bye_dos, `Teardown);
    ("cancel-dos", Vids.Alert.Cancel_dos, `Both);
    ("hijack", Vids.Alert.Call_hijack, `Both);
    ("media-spam", Vids.Alert.Media_spam, `Rule_stops);
    ("billing-fraud", Vids.Alert.Billing_fraud, `Teardown);
    ("invite-flood", Vids.Alert.Invite_flood, `Rule_stops);
    ("rtp-flood", Vids.Alert.Rtp_flood, `Rule_stops);
    ("drdos", Vids.Alert.Drdos, `Rule);
  ]

let run_scenario (sc_name, kind, want) =
  let tb = T.make ~seed:11 ~vids:T.Monitor ~config:Vids.Config.default () in
  let e = Enforce.Enforcer.create ~policy tb.T.sched (T.engine_exn tb) in
  Dsim.Network.set_tap tb.T.vids_node
    (Some (fun pkt -> ignore (Enforce.Enforcer.ingest e pkt)));
  let atk = Attack.Scenarios.create tb ~host:"203.0.113.66" in
  let at = sec 5.0 in
  let pair = 0 in
  let ua_a = List.nth tb.T.uas_a pair and ua_b = List.nth tb.T.uas_b pair in
  (match sc_name with
  | "bye-dos" -> Attack.Scenarios.spoofed_bye_call atk ~caller:ua_a ~callee:ua_b ~at
  | "cancel-dos" -> Attack.Scenarios.cancel_dos_call atk ~caller:ua_a ~callee:ua_b ~at
  | "hijack" -> Attack.Scenarios.hijack_call atk ~caller:ua_a ~callee:ua_b ~at
  | "media-spam" -> Attack.Scenarios.media_spam_call atk ~caller:ua_a ~callee:ua_b ~at
  | "billing-fraud" -> Attack.Scenarios.billing_fraud_call atk ~caller:ua_a ~callee:ua_b ~at
  | "invite-flood" ->
      Attack.Scenarios.invite_flood atk ~target:(Voip.Ua.aor ua_b) ~via_proxy:true ~count:25
        ~interval:(ms 40.0) ~at
  | "rtp-flood" ->
      Attack.Scenarios.rtp_flood atk
        ~target:(Dsim.Addr.v (T.ua_b_host tb pair) 16500)
        ~rate_pps:400 ~duration:(sec 2.0) ~at
  | "drdos" ->
      Attack.Scenarios.drdos atk ~victim_host:(T.ua_b_host tb pair) ~reflectors:20 ~responses:60
        ~at
  | other -> invalid_arg other);
  T.run_until tb (sec 40.0);
  let s = Enforce.Enforcer.stats e in
  let alerted = Vids.Engine.alerts_of_kind (T.engine_exn tb) kind <> [] in
  let sc_rules = s.Enforce.Enforcer.table.Enforce.Block_table.installed in
  let sc_teardowns = s.Enforce.Enforcer.teardowns in
  let sc_blocked = s.Enforce.Enforcer.blocked in
  let responded =
    alerted
    &&
    match want with
    | `Teardown -> sc_teardowns > 0
    | `Rule -> sc_rules > 0
    | `Both -> sc_teardowns > 0 && sc_rules > 0
    | `Rule_stops -> sc_rules > 0 && sc_blocked > 0
  in
  { sc_name; alerted; sc_rules; sc_teardowns; sc_blocked; responded }

let phase_c () = List.map run_scenario scenario_specs

(* ------------------------------------------------------------------ *)

let () =
  let legit_calls = try int_of_string Sys.argv.(1) with _ -> 400 in
  let n_flood = 60 in
  let records = build_records ~legit_calls ~flood:n_flood in
  let n_records = List.length records in
  let path = tmp ".pcap" in
  Ingest.Pcap.write_file path records;
  Printf.printf "capture: %d records (%d legit calls, %d-INVITE flood)\n%!" n_records
    legit_calls n_flood;

  let a = phase_a ~records ~path ~n_flood in
  let s = Enforce.Enforcer.stats a.enforcer in
  Printf.printf
    "containment: flood detected %b; %d blocked / %d passed in %.2f s wall; %d false block(s)\n"
    a.flood_detected s.Enforce.Enforcer.blocked s.Enforce.Enforcer.passed a.wall_s
    a.false_blocks;
  Printf.printf "offline replay: engine digest match %b, enforcement digest match %b\n"
    a.replay_engine_digest_match a.replay_enforce_digest_match;

  let b = phase_b ~records ~path ~clean:a in
  Printf.printf
    "kill -9 at batch %d (%d rule(s) live): recovered in %.2f ms; enforcement digest match \
     %b, alert set match %b\n"
    b.killed_at_batch b.rules_at_kill (1000. *. b.recover_wall_s) b.enforce_digest_match
    b.alert_set_match;
  cleanup [ path ];

  let scenarios = phase_c () in
  List.iter
    (fun r ->
      Printf.printf
        "scenario %-13s alert %b; %d rule(s), %d teardown(s), %d blocked -> %s\n" r.sc_name
        r.alerted r.sc_rules r.sc_teardowns r.sc_blocked
        (if r.responded then "responded" else "NO RESPONSE"))
    scenarios;
  let all_respond = List.for_all (fun r -> r.responded) scenarios in

  let passed =
    a.flood_detected && a.contained && a.false_blocks = 0 && a.legit_all_passed
    && a.replay_engine_digest_match && a.replay_enforce_digest_match
    && b.enforce_digest_match && b.alert_set_match && b.blocks_survived && all_respond
  in
  Bench_common.write_json ~path:"BENCH_prevent.json"
    (J.obj
       [
         ("bench", J.quote "prevent");
         ("legit_calls", J.int legit_calls);
         ("flood_invites", J.int n_flood);
         ("records", J.int n_records);
         ( "containment",
           J.obj
             [
               ("flood_detected", J.bool a.flood_detected);
               ("blocked", J.int s.Enforce.Enforcer.blocked);
               ("passed", J.int s.Enforce.Enforcer.passed);
               ("teardowns", J.int s.Enforce.Enforcer.teardowns);
               ("false_blocks", J.int a.false_blocks);
               ("wall_s", J.float a.wall_s);
               ("enforce_digest", J.quote (Enforce.Enforcer.digest a.enforcer));
             ] );
         ( "replay",
           J.obj
             [
               ("engine_digest_match", J.bool a.replay_engine_digest_match);
               ("enforce_digest_match", J.bool a.replay_enforce_digest_match);
             ] );
         ( "kill9",
           J.obj
             [
               ("killed_at_batch", J.int b.killed_at_batch);
               ("rules_at_kill", J.int b.rules_at_kill);
               ("recover_s", J.float b.recover_wall_s);
               ("enforce_digest_match", J.bool b.enforce_digest_match);
               ("alert_set_match", J.bool b.alert_set_match);
               ("blocks_survived", J.bool b.blocks_survived);
             ] );
         ( "scenarios",
           J.arr
             (List.map
                (fun r ->
                  J.obj
                    [
                      ("name", J.quote r.sc_name);
                      ("alerted", J.bool r.alerted);
                      ("rules", J.int r.sc_rules);
                      ("teardowns", J.int r.sc_teardowns);
                      ("blocked", J.int r.sc_blocked);
                      ("responded", J.bool r.responded);
                    ])
                scenarios) );
         ( "gate",
           J.obj
             [
               ("flood_detected", J.bool a.flood_detected);
               ("contained", J.bool a.contained);
               ("zero_false_blocks", J.bool (a.false_blocks = 0 && a.legit_all_passed));
               ("replay_digest_pinned",
                 J.bool (a.replay_engine_digest_match && a.replay_enforce_digest_match));
               ("kill9_converges", J.bool (b.enforce_digest_match && b.alert_set_match));
               ("blocks_survive_crash", J.bool b.blocks_survived);
               ("all_scenarios_respond", J.bool all_respond);
               ("passed", J.bool passed);
             ] );
       ]);
  if not passed then begin
    Printf.eprintf "FAIL: prevent gate\n";
    exit 1
  end
