(* Soak bench: the live-ingestion daemon left running, measured.

   Three phases, gated in BENCH_soak.json (CI fails when a gate does):

   A. Churn soak — hours-equivalent of call churn streamed from a pcap
      through the daemon under the governed (memory-capped) config.
      Gates: the live-word curve is flat (final/initial <= 1.05 after
      warmup), p99 dispatch latency is bounded, and the daemon's digest
      equals an offline replay of the same capture at the same horizon.
   B. kill -9 — the same capture, hard-killed mid-soak; recovery from
      the surviving snapshot + journal + capture must converge to the
      same alert digest as the uninterrupted run.
   C. Malformed flood — payloads mangled by the Dsim.Network fault layer
      sprayed at the daemon's real UDP socket while a legitimate INVITE
      flood runs from a distinct source.  The garbage must raise the
      ingest-error counters and quarantine its source without crashing
      the daemon or costing it the concurrent detection.

   Scale comes from argv: [soak.exe 4000] caps the churn at 4000 calls
   (the CI smoke preset); the default is 40000 — about 33 simulated
   minutes of 20 calls/s churn, hours of a realistic enterprise load. *)

module J = Obs.Json

let ms = Dsim.Time.of_ms
let sec = Dsim.Time.of_sec

let sip_addr host = Dsim.Addr.v host 5060

let invite ~call_id ~port =
  let body =
    Printf.sprintf
      "v=0\r\no=alice 0 0 IN IP4 10.1.0.10\r\ns=-\r\nc=IN IP4 10.1.0.10\r\nt=0 0\r\nm=audio %d RTP/AVP 18\r\n"
      port
  in
  Printf.sprintf
    "INVITE sip:bob@b.example SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>\r\n\
     Call-ID: %s\r\n\
     CSeq: 1 INVITE\r\n\
     Contact: <sip:alice@10.1.0.10:5060>\r\n\
     Content-Type: application/sdp\r\n\
     Content-Length: %d\r\n\r\n%s"
    call_id call_id call_id (String.length body) body

let response ~call_id ~code ~cseq ~sdp ~port =
  let body =
    if sdp then
      Printf.sprintf
        "v=0\r\no=bob 0 0 IN IP4 10.2.0.10\r\ns=-\r\nc=IN IP4 10.2.0.10\r\nt=0 0\r\nm=audio %d RTP/AVP 18\r\n"
        port
    else ""
  in
  Printf.sprintf
    "SIP/2.0 %d X\r\n\
     Via: SIP/2.0/UDP 10.1.0.2:5060;branch=z9hG4bK%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: %s\r\n%sContent-Length: %d\r\n\r\n%s"
    code call_id call_id call_id call_id cseq
    (if sdp then "Content-Type: application/sdp\r\n" else "")
    (String.length body) body

let ack ~call_id =
  Printf.sprintf
    "ACK sip:bob@10.2.0.10 SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKa-%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: 1 ACK\r\n\r\n"
    call_id call_id call_id call_id

let bye ~call_id =
  Printf.sprintf
    "BYE sip:bob@10.2.0.10 SIP/2.0\r\n\
     Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bKb-%s\r\n\
     From: <sip:alice@a.example>;tag=ta-%s\r\n\
     To: <sip:bob@b.example>;tag=tb-%s\r\n\
     Call-ID: %s\r\nCSeq: 2 BYE\r\n\r\n"
    call_id call_id call_id call_id

let rtp_bytes ~seq =
  Rtp.Rtp_packet.encode
    (Rtp.Rtp_packet.make ~payload_type:18 ~sequence:seq
       ~timestamp:(Int32.of_int (160 * seq))
       ~ssrc:77l (String.make 20 'v'))

(* Call churn on a 50 ms grid: two in three calls run a full dialog with
   a media burst, one in three is abandoned after the INVITE, and one in
   five established calls never sends BYE — the mix that forces the
   governance sweep to actually evict.  Sorted into capture order: a
   pcap is chronological. *)
let churn_records ~calls =
  let records = ref [] in
  let add at src dst payload = records := { Vids.Trace.at; src; dst; payload } :: !records in
  let a_sig = sip_addr "10.1.0.2" and b_sig = sip_addr "10.2.0.2" in
  for i = 0 to calls - 1 do
    let call_id = Printf.sprintf "soak-%d" i in
    let t0 = ms (float_of_int (50 * i)) in
    let port = 16384 + (2 * (i mod 2048)) in
    let ( +& ) a b = Dsim.Time.add a b in
    add t0 a_sig b_sig (invite ~call_id ~port);
    if i mod 3 <> 2 then begin
      add (t0 +& ms 20.) b_sig a_sig (response ~call_id ~code:180 ~cseq:"1 INVITE" ~sdp:false ~port);
      add (t0 +& ms 40.) b_sig a_sig (response ~call_id ~code:200 ~cseq:"1 INVITE" ~sdp:true ~port);
      add (t0 +& ms 60.) a_sig b_sig (ack ~call_id);
      let media_src = Dsim.Addr.v "10.1.0.10" port in
      let media_dst = Dsim.Addr.v "10.2.0.10" port in
      for s = 0 to 4 do
        add (t0 +& ms (80. +. (20. *. float_of_int s))) media_src media_dst (rtp_bytes ~seq:s)
      done;
      if i mod 5 <> 4 then begin
        add (t0 +& ms 600.) a_sig b_sig (bye ~call_id);
        add (t0 +& ms 620.) b_sig a_sig (response ~call_id ~code:200 ~cseq:"2 BYE" ~sdp:false ~port)
      end
    end
  done;
  List.stable_sort
    (fun (a : Vids.Trace.record) b -> Dsim.Time.compare a.Vids.Trace.at b.Vids.Trace.at)
    !records

let tmp suffix = Filename.temp_file "vids_soak" suffix

let alert_keys engine =
  List.sort compare (List.map Vids.Alert.dedup_key (Vids.Engine.alerts engine))

(* The stock governed ageing horizon is 30 minutes — longer than the CI
   soak itself — so scale the ceiling down until the steady state arrives
   inside the run, keeping every mechanism (caps, ageing, periodic sweep,
   degradation) live.  At 20 calls/s the pools plateau around 90 s in:
   closed calls linger 32 s, abandoned setups age out at 60 s. *)
let ceiling =
  {
    (Vids.Config.governed Vids.Config.default) with
    Vids.Config.call_max_age = Dsim.Time.of_sec 60.0;
    sweep_interval = Dsim.Time.of_sec 10.0;
    max_calls = 4_000;
    max_detectors = 4_000;
    degrade_high_water = 3_600;
    degrade_low_water = 3_200;
  }

let base_config =
  {
    Ingest.Daemon.default with
    Ingest.Daemon.engine_config = Some ceiling;
    batch = 256;
  }

let run_daemon ?(config = base_config) ?stop ?hard_kill ?on_batch sources =
  let clock = Ingest.Clock.manual () in
  match Ingest.Daemon.run ~clock ?stop ?hard_kill ?on_batch config sources with
  | Error e ->
      Printf.eprintf "FAIL: daemon: %s\n" e;
      exit 1
  | Ok report -> report

(* ------------------------------------------------------------------ *)
(* Phase A: churn soak under the memory ceiling                        *)
(* ------------------------------------------------------------------ *)

type soak_result = {
  report : Ingest.Daemon.report;
  samples : (int * int) list;  (** (batch index, live words) oldest first *)
  soak_wall_s : float;
  digest_match : bool;
}

let live_words = Bench_common.live_words

let phase_a ~records ~path =
  let snap = tmp ".ck" in
  let config =
    {
      base_config with
      Ingest.Daemon.checkpoint_every_s = 30.0;
      snapshot_path = Some snap;
      journal_path = Some (snap ^ ".journal");
    }
  in
  let n_batches = (List.length records / config.Ingest.Daemon.batch) + 1 in
  let sample_every = max 1 (n_batches / 24) in
  let batches = ref 0 in
  let samples = ref [] in
  let on_batch () =
    incr batches;
    if !batches mod sample_every = 0 then
      samples := (!batches, live_words ()) :: !samples
  in
  let report, soak_wall_s =
    Bench_common.timed (fun () ->
        run_daemon ~config ~on_batch [ Ingest.Daemon.Pcap_file { path; pace = false } ])
  in
  let horizon = report.Ingest.Daemon.horizon in
  let _sched, offline = Vids.Trace.replay_until ~config:ceiling ~until:horizon records in
  let digest_match =
    String.equal
      (Vids.Snapshot.digest ~at:horizon offline)
      (Vids.Snapshot.digest ~at:horizon report.Ingest.Daemon.engine)
  in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p)
    [ snap; snap ^ ".1"; snap ^ ".journal" ];
  { report; samples = List.rev !samples; soak_wall_s; digest_match }

(* ------------------------------------------------------------------ *)
(* Phase B: kill -9 mid-soak, recover, compare alert digests           *)
(* ------------------------------------------------------------------ *)

type kill_result = {
  killed_at_batch : int;
  killed_dispatched : int;
  recovered_replayed : int;
  recover_wall_s : float;
  alert_digest_match : bool;
}

let phase_b ~records ~path ~(clean : Ingest.Daemon.report) =
  let snap = tmp ".ck" in
  let capture = tmp ".trace" in
  let config =
    {
      base_config with
      Ingest.Daemon.checkpoint_every_s = 10.0;
      snapshot_path = Some snap;
      journal_path = Some (snap ^ ".journal");
      record_path = Some capture;
    }
  in
  let n_batches = (List.length records / config.Ingest.Daemon.batch) + 1 in
  let kill_batch = max 2 (n_batches * 7 / 10) in
  let hard_kill = ref false in
  let batches = ref 0 in
  let killed =
    run_daemon ~config ~hard_kill
      ~on_batch:(fun () ->
        incr batches;
        if !batches = kill_batch then hard_kill := true)
      [ Ingest.Daemon.Pcap_file { path; pace = false } ]
  in
  if killed.Ingest.Daemon.stop_reason <> Ingest.Daemon.Killed then begin
    Printf.eprintf "FAIL: hard kill landed after the capture ran out; raise the scale\n";
    exit 1
  end;
  let result =
    match
      Bench_common.timed (fun () ->
          Vids.Recovery.recover_files ~config:ceiling ~journal_path:(snap ^ ".journal")
            ~trace_path:capture ~until:killed.Ingest.Daemon.horizon ~snapshot_path:snap ())
    with
    | Error e, _ ->
        Printf.eprintf "FAIL: recovery: %s\n" e;
        exit 1
    | Ok fr, recover_wall_s ->
        let o = fr.Vids.Recovery.outcome in
        {
          killed_at_batch = kill_batch;
          killed_dispatched = killed.Ingest.Daemon.dispatched;
          recovered_replayed = o.Vids.Recovery.replayed;
          recover_wall_s;
          alert_digest_match =
            alert_keys o.Vids.Recovery.engine = alert_keys clean.Ingest.Daemon.engine;
        }
  in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p)
    [ snap; snap ^ ".1"; snap ^ ".journal"; capture ];
  result

(* ------------------------------------------------------------------ *)
(* Phase C: malformed flood over real UDP, legit attack concurrent     *)
(* ------------------------------------------------------------------ *)

(* Payloads mangled by the same adversarial transmission layer the
   robustness suite uses: valid INVITEs pushed through a two-node
   Dsim.Network with truncation and bit-flip faults installed; whatever
   comes out the far end is what the wire would have delivered. *)
let mangled_payloads ~count =
  let sched = Dsim.Scheduler.create () in
  let rng = Dsim.Rng.create 4242 in
  let net = Dsim.Network.create sched rng in
  let atk = Dsim.Network.add_node net ~name:"atk" ~hosts:[ "198.51.100.1" ] in
  let ids = Dsim.Network.add_node net ~name:"ids" ~hosts:[ "198.51.100.2" ] in
  Dsim.Network.connect net atk ids ~rate_bps:0.0 ~prop_delay:(ms 1.0) ~loss_prob:0.0;
  Dsim.Network.set_fault_profile net
    (Some
       {
         Dsim.Network.pristine with
         Dsim.Network.truncate_prob = 0.6;
         corrupt_prob = 0.8;
       });
  let out = ref [] in
  Dsim.Network.set_handler ids (fun p -> out := p.Dsim.Packet.payload :: !out);
  let src = Dsim.Addr.v "198.51.100.1" 5060 and dst = Dsim.Addr.v "198.51.100.2" 5060 in
  for i = 1 to count do
    Dsim.Network.send net ~from:atk
      (Dsim.Network.make_packet net ~src ~dst
         (invite ~call_id:(Printf.sprintf "mangle-%d" i) ~port:20000))
  done;
  Dsim.Scheduler.run_until sched (sec 10.0);
  List.rev !out

type flood_result = {
  flood_report : Ingest.Daemon.report;
  mangled_sent : int;
  flood_detected : bool;
}

let phase_c () =
  match Ingest.Udp_source.listen ~host:"127.0.0.1" ~port:5060 () with
  | Error e ->
      Printf.eprintf "FAIL: cannot bind 127.0.0.1:5060 (%s)\n" e;
      exit 1
  | Ok u ->
      let daemon_addr = Ingest.Udp_source.local_addr u in
      let mangled = mangled_payloads ~count:30 in
      let sender () = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
      let hostile = sender () and attacker = sender () in
      let sockaddr =
        Unix.ADDR_INET
          ( Unix.inet_addr_of_string (Dsim.Addr.host daemon_addr),
            Dsim.Addr.port daemon_addr )
      in
      let send fd payload =
        ignore (Unix.sendto fd (Bytes.of_string payload) 0 (String.length payload) [] sockaddr)
      in
      let stop = ref false in
      let batches = ref 0 in
      let config = { base_config with Ingest.Daemon.quarantine_threshold = 5 } in
      let report =
        run_daemon ~config ~stop
          ~on_batch:(fun () ->
            incr batches;
            if !batches = 1 then begin
              List.iter (send hostile) mangled;
              for i = 1 to 12 do
                send attacker (invite ~call_id:(Printf.sprintf "udp-flood-%d" i) ~port:21000)
              done
            end;
            (* A trailing burst lands after the quarantine has tripped,
               so the drop counter also gets exercised. *)
            if !batches = 60 then List.iter (send hostile) mangled;
            if !batches = 400 then stop := true)
          [ Ingest.Daemon.Udp u ]
      in
      Unix.close hostile;
      Unix.close attacker;
      {
        flood_report = report;
        mangled_sent = 2 * List.length mangled;
        flood_detected =
          Vids.Engine.alerts_of_kind report.Ingest.Daemon.engine Vids.Alert.Invite_flood <> [];
      }

(* ------------------------------------------------------------------ *)

let () =
  let calls = try int_of_string Sys.argv.(1) with _ -> 40_000 in
  Printf.printf "building %d-call churn capture...\n%!" calls;
  let records = churn_records ~calls in
  let n_records = List.length records in
  let path = tmp ".pcap" in
  Ingest.Pcap.write_file path records;
  Printf.printf "capture: %d records over %.1f simulated minutes\n%!" n_records
    (Dsim.Time.to_sec
       (List.fold_left (fun acc r -> Dsim.Time.max acc r.Vids.Trace.at) Dsim.Time.zero records)
    /. 60.0);

  (* A: soak. *)
  let a = phase_a ~records ~path in
  let r = a.report in
  let p99_s = Dsim.Stat.Quantiles.p99 r.Ingest.Daemon.dispatch in
  Printf.printf "soak: %d dispatched in %.2f s wall (%.0f rec/s), %d checkpoints, p99 %.0f us\n"
    r.Ingest.Daemon.dispatched a.soak_wall_s
    (float_of_int r.Ingest.Daemon.dispatched /. a.soak_wall_s)
    r.Ingest.Daemon.checkpoints (1e6 *. p99_s);
  (* The first quarter of samples is warmup: arenas, interning tables and
     the governance-capped fact base filling to their plateaus. *)
  let warm = List.filteri (fun i _ -> i >= List.length a.samples / 4) a.samples in
  let first_live = match warm with (_, w) :: _ -> w | [] -> 1 in
  let final_live = match List.rev warm with (_, w) :: _ -> w | [] -> 1 in
  let growth = float_of_int final_live /. float_of_int (max 1 first_live) in
  List.iter
    (fun (b, w) -> Printf.printf "  live words @ batch %5d: %9d\n" b w)
    a.samples;
  let flat = growth <= 1.05 in
  let p99_bounded = p99_s <= 0.005 in
  Printf.printf "live-word growth after warmup: %.3fx (gate <= 1.05): %b\n" growth flat;
  Printf.printf "p99 dispatch %.0f us (gate <= 5000 us): %b\n" (1e6 *. p99_s) p99_bounded;
  Printf.printf "daemon digest = offline replay digest: %b\n" a.digest_match;

  (* B: kill -9 and recover. *)
  let b = phase_b ~records ~path ~clean:r in
  Printf.printf
    "kill -9 at batch %d (%d dispatched): recovered in %.2f ms, %d replayed, alert digest match: %b\n"
    b.killed_at_batch b.killed_dispatched (1000. *. b.recover_wall_s) b.recovered_replayed
    b.alert_digest_match;

  (* C: malformed flood over live UDP. *)
  let c = phase_c () in
  let fr = c.flood_report in
  let q = fr.Ingest.Daemon.quarantine in
  Printf.printf
    "malformed flood: %d mangled sent, %d parse errors, %d quarantines, %d dropped, flood detected: %b\n"
    c.mangled_sent fr.Ingest.Daemon.parse_errors q.Ingest.Quarantine.quarantines
    q.Ingest.Quarantine.dropped c.flood_detected;
  let flood_survived =
    fr.Ingest.Daemon.parse_errors > 0
    && q.Ingest.Quarantine.quarantines >= 1
    && c.flood_detected
  in
  Sys.remove path;

  let passed = flat && p99_bounded && a.digest_match && b.alert_digest_match && flood_survived in
  Bench_common.write_json ~path:"BENCH_soak.json"
    (J.obj
       [
         ("bench", J.quote "soak");
         ("calls", J.int calls);
         ("records", J.int n_records);
         ( "soak",
           J.obj
             [
               ("dispatched", J.int r.Ingest.Daemon.dispatched);
               ("wall_s", J.float a.soak_wall_s);
               ( "records_per_s",
                 J.float (float_of_int r.Ingest.Daemon.dispatched /. a.soak_wall_s) );
               ("checkpoints", J.int r.Ingest.Daemon.checkpoints);
               ("p99_dispatch_s", J.float p99_s);
               ( "live_words",
                 J.arr
                   (List.map
                      (fun (batch, words) ->
                        J.obj [ ("batch", J.int batch); ("words", J.int words) ])
                      a.samples) );
               ("live_word_growth", J.float growth);
             ] );
         ( "kill9",
           J.obj
             [
               ("killed_at_batch", J.int b.killed_at_batch);
               ("killed_dispatched", J.int b.killed_dispatched);
               ("recover_s", J.float b.recover_wall_s);
               ("replayed", J.int b.recovered_replayed);
               ("alert_digest_match", J.bool b.alert_digest_match);
             ] );
         ( "malformed_flood",
           J.obj
             [
               ("mangled_sent", J.int c.mangled_sent);
               ("parse_errors", J.int fr.Ingest.Daemon.parse_errors);
               ("quarantines", J.int q.Ingest.Quarantine.quarantines);
               ("dropped", J.int q.Ingest.Quarantine.dropped);
               ("flood_detected", J.bool c.flood_detected);
             ] );
         ( "gate",
           J.obj
             [
               ("flat_live_words", J.bool flat);
               ("p99_bounded", J.bool p99_bounded);
               ("digest_match", J.bool a.digest_match);
               ("kill9_converges", J.bool b.alert_digest_match);
               ("flood_survived", J.bool flood_survived);
               ("passed", J.bool passed);
             ] );
       ]);
  if not passed then begin
    Printf.eprintf "FAIL: soak gate\n";
    exit 1
  end
